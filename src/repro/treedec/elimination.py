"""Weighted Minimum Degree Elimination (MDE) — Algorithm 1, lines 1-17.

MDE repeatedly removes the node with the smallest degree from a working
graph and re-inserts the clique of its neighbors.  Following the paper's
adapted MDE, every clique edge ``(u, w)`` created while eliminating ``v``
carries the weight ``δ⁻(u) + δ⁻(w)`` — the length of the wedge through
``v`` — and an existing edge keeps the smaller of its old and new weight.
By Lemma 14, the weight ``δ⁻_i(u)`` recorded when edge ``(v_i, u)`` is
deleted equals the ``(i-1)``-local distance between ``v_i`` and ``u``;
that is what makes both the tree-index and the weighted core graph
``G_{λ+1}`` exact.

Two termination modes:

* ``bandwidth=None`` — run to completion (full MDE tree decomposition,
  used by H2H and treewidth estimation);
* ``bandwidth=d`` — stop as soon as the minimum degree *exceeds* ``d``
  (Section 4.3: the eliminated bags have at most ``d + 1`` nodes, so
  every interface has at most ``d`` nodes — the paper's Example 5);
  the remaining nodes are the core ``B_c``.
"""

from __future__ import annotations

import dataclasses
import heapq

import repro.obs as obs
from repro.exceptions import DecompositionError
from repro.graphs.graph import Graph, Weight
from repro.obs.tracing import span as obs_span


@dataclasses.dataclass
class EliminationStep:
    """One round of MDE: the eliminated node and its transient neighborhood.

    Attributes
    ----------
    node:
        The eliminated node ``v_i``.
    neighbors:
        ``N_i`` — the neighbors of ``v_i`` in the working graph right
        before its removal, sorted ascending by node id.  The bag
        ``B_i = {v_i} ∪ N_i``.
    local_distance:
        ``δ⁻_i(u)`` for each ``u ∈ N_i``: the weight of edge ``(v_i, u)``
        at deletion time, i.e. the ``(i-1)``-local distance (Lemma 14).
    """

    node: int
    neighbors: tuple[int, ...]
    local_distance: dict[int, Weight]

    @property
    def bag_size(self) -> int:
        """``|B_i| = |N_i| + 1``."""
        return len(self.neighbors) + 1


@dataclasses.dataclass
class EliminationResult:
    """Everything the MDE run produced.

    Attributes
    ----------
    graph:
        The input graph.
    steps:
        One :class:`EliminationStep` per eliminated node, in elimination
        order (``steps[i]`` describes ``v_{i+1}`` in paper numbering).
    position:
        ``position[v]`` is the 0-based elimination position of node ``v``,
        or ``None`` when ``v`` survived into the core.
    core_nodes:
        Sorted node ids of the core ``B_c`` (empty for a full run).
    core_adjacency:
        Adjacency of the reduced weighted graph ``G_{λ+1}`` on the core
        nodes: ``core_adjacency[v]`` maps each core neighbor to the
        λ-local distance edge weight.  Empty dict for a full run.
    bandwidth:
        The ``d`` the run was stopped with (``None`` = run to completion).
    """

    graph: Graph
    steps: list[EliminationStep]
    position: list[int | None]
    core_nodes: list[int]
    core_adjacency: dict[int, dict[int, Weight]]
    bandwidth: int | None

    @property
    def boundary(self) -> int:
        """λ — the number of eliminated nodes."""
        return len(self.steps)

    @property
    def width(self) -> int:
        """Largest ``|N_i|`` over the eliminated prefix (0 when empty).

        For a full run this is the MDE-based treewidth of the graph.
        """
        return max((len(step.neighbors) for step in self.steps), default=0)

    def eliminated_order(self) -> list[int]:
        """Node ids in elimination order ``v_1, v_2, ...``."""
        return [step.node for step in self.steps]

    def is_core(self, v: int) -> bool:
        """True when node ``v`` survived into the core."""
        return self.position[v] is None

    def rank(self, v: int) -> int:
        """Total order aligned with elimination: eliminated nodes get their
        position, core nodes get positions after every eliminated node."""
        pos = self.position[v]
        if pos is not None:
            return pos
        return self.boundary + self._core_rank[v]

    def __post_init__(self) -> None:
        self._core_rank = {v: i for i, v in enumerate(self.core_nodes)}

    def core_graph(self) -> tuple[Graph, list[int]]:
        """Compact ``G_{λ+1}`` into a :class:`Graph`.

        Returns ``(graph, originals)``: core node ``i`` of the compact
        graph corresponds to original node ``originals[i]``.
        """
        originals = self.core_nodes
        compact = {v: i for i, v in enumerate(originals)}
        adjacency: list[list[tuple[int, Weight]]] = [[] for _ in originals]
        unweighted = True
        for v in originals:
            row = adjacency[compact[v]]
            for u, w in self.core_adjacency[v].items():
                row.append((compact[u], w))
                if w != 1:
                    unweighted = False
        return Graph(len(originals), adjacency, unweighted=unweighted), list(originals)


def minimum_degree_elimination(
    graph: Graph,
    bandwidth: int | None = None,
    *,
    max_steps: int | None = None,
) -> EliminationResult:
    """Run (weighted, adapted) MDE on ``graph``.

    Parameters
    ----------
    graph:
        Input graph; edge weights seed the local distances.
    bandwidth:
        Stop once the minimum working degree exceeds this value (the
        paper's ``d``).  ``None`` runs to completion; ``0`` eliminates
        only degree-0 nodes (the whole graph is the core, CT-0 = PLL).
    max_steps:
        Optional hard cap on eliminations, for incremental callers.
    """
    if bandwidth is not None and bandwidth < 0:
        raise DecompositionError(f"bandwidth must be non-negative, got {bandwidth}")

    # Dynamic working graph: adjacency[v] is None once v is eliminated.
    adjacency: list[dict[int, Weight] | None] = [
        dict(graph.neighbors(v)) for v in graph.nodes()
    ]
    heap: list[tuple[int, int]] = [(len(adjacency[v] or {}), v) for v in graph.nodes()]
    heapq.heapify(heap)

    steps: list[EliminationStep] = []
    position: list[int | None] = [None] * graph.n
    step_cap = max_steps if max_steps is not None else graph.n
    cutoff_degree: int | None = None

    with obs_span(
        "treedec.mde", n=graph.n, m=graph.m, bandwidth=bandwidth
    ) as mde_span:
        while heap and len(steps) < step_cap:
            degree, v = heapq.heappop(heap)
            row = adjacency[v]
            if row is None or degree != len(row):
                continue  # stale heap entry
            if bandwidth is not None and degree > bandwidth:
                # Paper semantics (Section 4.3 / Example 5): the eliminated
                # bags have at most d+1 nodes (|N_i| <= d), and elimination
                # stops at the first bag that would exceed that — so every
                # tree interface has at most d nodes.
                cutoff_degree = degree
                break
            neighbors = tuple(sorted(row))
            local_distance = dict(row)
            position[v] = len(steps)
            steps.append(EliminationStep(node=v, neighbors=neighbors, local_distance=local_distance))

            # Remove v and re-insert the weighted clique over its neighbors.
            adjacency[v] = None
            for u in neighbors:
                row_u = adjacency[u]
                assert row_u is not None  # neighbors of a live node are live
                del row_u[v]
            for a_index, u in enumerate(neighbors):
                row_u = adjacency[u]
                du = local_distance[u]
                for w in neighbors[a_index + 1 :]:
                    wedge = du + local_distance[w]
                    row_w = adjacency[w]
                    old = row_u.get(w)
                    if old is None or wedge < old:
                        row_u[w] = wedge
                        row_w[u] = wedge
            for u in neighbors:
                heapq.heappush(heap, (len(adjacency[u]), u))

        core_nodes = sorted(v for v in graph.nodes() if position[v] is None)
        if obs.tracing_enabled():
            mde_span.set(
                boundary=len(steps),
                core=len(core_nodes),
                width=max((len(step.neighbors) for step in steps), default=0),
                cutoff_degree=cutoff_degree,
            )
    if obs.enabled():
        metrics = obs.registry()
        metrics.counter("mde.rounds").inc(len(steps))
        if cutoff_degree is not None:
            metrics.counter("mde.bandwidth_cutoffs").inc()
            metrics.gauge("mde.cutoff_degree").set(cutoff_degree)
    core_adjacency = {v: dict(adjacency[v] or {}) for v in core_nodes}
    return EliminationResult(
        graph=graph,
        steps=steps,
        position=position,
        core_nodes=core_nodes,
        core_adjacency=core_adjacency,
        bandwidth=bandwidth,
    )


def independent_set_elimination(
    graph: Graph,
    bandwidth: int,
) -> EliminationResult:
    """Round-based independent-set elimination (IS-LABEL style).

    Instead of MDE's one-at-a-time minimum-degree removal, each round
    selects a maximal *independent set* of live nodes whose current
    degree is at most ``bandwidth`` and eliminates all of them.  Members
    of an independent set are pairwise non-adjacent, so eliminating one
    member never touches another member's neighborhood, recorded wedge
    weights, or fill edges — simultaneous elimination is equivalent to
    sequential elimination in *any* intra-round order.  The rounds are
    therefore emitted as ordinary sequential :class:`EliminationStep`\\ s
    (ascending node id within a round, the canonical order), and the
    result satisfies every invariant
    :meth:`~repro.treedec.core_tree.CoreTreeDecomposition.validate`
    checks: bags have at most ``bandwidth`` neighbors, and a step's
    surviving neighbors are always eliminated strictly later.

    The selection is greedy by ``(degree, node id)`` per round, which
    keeps the result deterministic.  Rounds where every member is
    independent are what make this order parallel-friendly on huge
    peripheries (the IS-LABEL construction); the trade-off against MDE
    is a possibly different (usually slightly larger) boundary for the
    same bandwidth, since low-degree nodes blocked by a picked neighbor
    wait for the next round while MDE would interleave them freely.
    """
    if bandwidth is None or bandwidth < 0:
        raise DecompositionError(f"bandwidth must be non-negative, got {bandwidth}")

    adjacency: list[dict[int, Weight] | None] = [
        dict(graph.neighbors(v)) for v in graph.nodes()
    ]
    steps: list[EliminationStep] = []
    position: list[int | None] = [None] * graph.n
    rounds = 0

    with obs_span(
        "treedec.is_elim", n=graph.n, m=graph.m, bandwidth=bandwidth
    ) as is_span:
        live = set(graph.nodes())
        while True:
            # Greedy maximal IS over live nodes with degree <= bandwidth,
            # scanned in ascending (degree, id) order.
            candidates = sorted(
                (len(adjacency[v]), v)  # type: ignore[arg-type]
                for v in live
                if len(adjacency[v]) <= bandwidth  # type: ignore[arg-type]
            )
            blocked: set[int] = set()
            picked: list[int] = []
            for _, v in candidates:
                if v in blocked:
                    continue
                picked.append(v)
                blocked.update(adjacency[v])  # type: ignore[arg-type]
            if not picked:
                break
            rounds += 1
            # Canonical intra-round order (any order yields the same
            # steps; ascending id keeps the output deterministic).
            for v in sorted(picked):
                row = adjacency[v]
                assert row is not None
                neighbors = tuple(sorted(row))
                local_distance = dict(row)
                position[v] = len(steps)
                steps.append(
                    EliminationStep(
                        node=v, neighbors=neighbors, local_distance=local_distance
                    )
                )
                adjacency[v] = None
                live.discard(v)
                for u in neighbors:
                    row_u = adjacency[u]
                    assert row_u is not None  # IS members are non-adjacent
                    del row_u[v]
                for a_index, u in enumerate(neighbors):
                    row_u = adjacency[u]
                    du = local_distance[u]
                    for w in neighbors[a_index + 1 :]:
                        wedge = du + local_distance[w]
                        row_w = adjacency[w]
                        old = row_u.get(w)
                        if old is None or wedge < old:
                            row_u[w] = wedge
                            row_w[u] = wedge

        core_nodes = sorted(live)
        if obs.tracing_enabled():
            is_span.set(
                boundary=len(steps),
                core=len(core_nodes),
                rounds=rounds,
                width=max((len(step.neighbors) for step in steps), default=0),
            )
    if obs.enabled():
        metrics = obs.registry()
        metrics.counter("is_elim.rounds").inc(rounds)
        metrics.counter("is_elim.eliminations").inc(len(steps))
    core_adjacency = {v: dict(adjacency[v] or {}) for v in core_nodes}
    return EliminationResult(
        graph=graph,
        steps=steps,
        position=position,
        core_nodes=core_nodes,
        core_adjacency=core_adjacency,
        bandwidth=bandwidth,
    )


def elimination_width_profile(graph: Graph) -> list[int]:
    """``|N_i|`` per elimination round of a full MDE run.

    The profile is the shape that decides how the CT-Index trade-off
    behaves: the boundary λ for bandwidth ``d`` is the first position
    where the *residual minimum degree* reaches ``d``, i.e. where this
    profile first touches ``d``.
    """
    result = minimum_degree_elimination(graph, bandwidth=None)
    return [len(step.neighbors) for step in result.steps]
