"""Constant-time lowest common ancestors over a forest.

CT-Index query Case 4 needs the LCA of two bags in the same tree of the
forest.  This is the classic Euler-tour + sparse-table reduction to
range-minimum queries (Harel & Tarjan — cited as [12] in the paper):
linear-ish preprocessing, O(1) per query.
"""

from __future__ import annotations

from repro.exceptions import DecompositionError


class ForestLCA:
    """LCA index over a forest given as a parent array.

    ``parent[v]`` is the parent of node ``v`` or ``None`` for roots.  The
    node universe is ``0 .. len(parent) - 1``.  Nodes in different trees
    have no LCA; :meth:`lca` raises for such pairs, and
    :meth:`same_tree` tests membership first.
    """

    def __init__(self, parent: list[int | None]) -> None:
        n = len(parent)
        self._parent = list(parent)
        children: list[list[int]] = [[] for _ in range(n)]
        roots: list[int] = []
        for v, p in enumerate(parent):
            if p is None:
                roots.append(v)
            else:
                if not 0 <= p < n:
                    raise DecompositionError(f"parent {p} of node {v} is out of range")
                children[p].append(v)

        self._euler: list[int] = []
        self._depth_at: list[int] = []
        self._first: list[int] = [-1] * n
        self._depth: list[int] = [0] * n
        self._root_of: list[int] = [-1] * n
        for root in roots:
            self._tour(root, children)
        if any(r == -1 for r in self._root_of):
            raise DecompositionError("parent array contains a cycle")
        self._build_sparse_table()

    def _tour(self, root: int, children: list[list[int]]) -> None:
        """Iterative Euler tour of one tree."""
        stack: list[tuple[int, int]] = [(root, 0)]
        self._depth[root] = 0
        self._root_of[root] = root
        while stack:
            v, child_index = stack.pop()
            self._record(v)
            if child_index < len(children[v]):
                stack.append((v, child_index + 1))
                child = children[v][child_index]
                self._depth[child] = self._depth[v] + 1
                self._root_of[child] = root
                stack.append((child, 0))

    def _record(self, v: int) -> None:
        if self._first[v] == -1:
            self._first[v] = len(self._euler)
        self._euler.append(v)
        self._depth_at.append(self._depth[v])

    def _build_sparse_table(self) -> None:
        size = len(self._euler)
        self._log = [0] * (size + 1)
        for i in range(2, size + 1):
            self._log[i] = self._log[i // 2] + 1
        # table[k][i] = index (into euler) of the min-depth entry in
        # euler[i : i + 2^k].
        table: list[list[int]] = [list(range(size))]
        k = 1
        while (1 << k) <= size:
            previous = table[k - 1]
            length = size - (1 << k) + 1
            row = [0] * length
            half = 1 << (k - 1)
            for i in range(length):
                left = previous[i]
                right = previous[i + half]
                row[i] = left if self._depth_at[left] <= self._depth_at[right] else right
            table.append(row)
            k += 1
        self._table = table

    @property
    def n(self) -> int:
        """Number of nodes in the forest."""
        return len(self._parent)

    def depth(self, v: int) -> int:
        """Depth of ``v`` within its tree (roots have depth 0)."""
        return self._depth[v]

    def root(self, v: int) -> int:
        """Root of the tree containing ``v``."""
        return self._root_of[v]

    def same_tree(self, u: int, v: int) -> bool:
        """True when ``u`` and ``v`` belong to the same tree."""
        return self._root_of[u] == self._root_of[v]

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v`` (same tree required)."""
        if not self.same_tree(u, v):
            raise DecompositionError(f"nodes {u} and {v} are in different trees")
        i, j = self._first[u], self._first[v]
        if i > j:
            i, j = j, i
        k = self._log[j - i + 1]
        left = self._table[k][i]
        right = self._table[k][j - (1 << k) + 1]
        winner = left if self._depth_at[left] <= self._depth_at[right] else right
        return self._euler[winner]

    def is_ancestor(self, ancestor: int, v: int) -> bool:
        """True when ``ancestor`` is ``v`` itself or a proper ancestor."""
        return self.same_tree(ancestor, v) and self.lca(ancestor, v) == ancestor


def naive_lca(parent: list[int | None], u: int, v: int) -> int | None:
    """Reference LCA by walking parent chains; ``None`` for separate trees.

    Quadratic and only used to cross-check :class:`ForestLCA` in tests.
    """
    ancestors: set[int] = set()
    x: int | None = u
    while x is not None:
        ancestors.add(x)
        x = parent[x]
    y: int | None = v
    while y is not None:
        if y in ancestors:
            return y
        y = parent[y]
    return None
