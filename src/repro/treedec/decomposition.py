"""MDE-based tree decompositions (Section 3.2.1) and validity checking.

A full MDE run yields ``n`` bags ``B_i = {v_i} ∪ N_i``; the parent of bag
``B_i`` is ``B_{f(i)}`` where ``f(i)`` is the earliest-eliminated node of
``N_i``, and the bag of the last eliminated node is the root.  The
structure satisfies Definition 2, and additionally Lemma 2: ``v_i``
appears exactly in the bags of its descendants.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.exceptions import DecompositionError
from repro.graphs.graph import Graph
from repro.treedec.elimination import EliminationResult, minimum_degree_elimination


@dataclasses.dataclass
class TreeDecomposition:
    """A rooted MDE-based tree decomposition of a graph.

    Bags are indexed by elimination position: bag ``i`` belongs to the
    ``i``-th eliminated node.  ``parent[i]`` is the bag index of the
    parent (``None`` for roots — the decomposition is a forest when the
    graph is disconnected).

    Attributes
    ----------
    graph:
        The decomposed graph.
    bags:
        ``bags[i]`` is the sorted node tuple of bag ``i`` (includes the
        owning node ``order[i]``).
    order:
        ``order[i]`` is the node whose elimination produced bag ``i``.
    parent:
        Parent bag index per bag, ``None`` at roots.
    """

    graph: Graph
    bags: list[tuple[int, ...]]
    order: list[int]
    parent: list[int | None]

    def __post_init__(self) -> None:
        self.position = {v: i for i, v in enumerate(self.order)}
        self.children: list[list[int]] = [[] for _ in self.bags]
        for i, p in enumerate(self.parent):
            if p is not None:
                self.children[p].append(i)

    @property
    def width(self) -> int:
        """Treewidth of this decomposition: ``max |B_i| - 1``."""
        return max((len(bag) for bag in self.bags), default=1) - 1

    @property
    def roots(self) -> list[int]:
        """Bag indexes with no parent."""
        return [i for i, p in enumerate(self.parent) if p is None]

    def height(self) -> int:
        """Longest root-to-leaf path length measured in bags (>= 1)."""
        if not self.bags:
            return 0
        depth = [0] * len(self.bags)
        best = 0
        # Parents always have larger elimination positions, so a reverse
        # sweep sees every parent before its children.
        for i in range(len(self.bags) - 1, -1, -1):
            p = self.parent[i]
            depth[i] = 1 if p is None else depth[p] + 1
            best = max(best, depth[i])
        return best

    def bag_of(self, v: int) -> tuple[int, ...]:
        """The bag owned by node ``v``."""
        return self.bags[self.position[v]]

    def ancestors(self, i: int) -> list[int]:
        """Bag indexes on the path from ``i``'s parent up to its root."""
        chain: list[int] = []
        p = self.parent[i]
        while p is not None:
            chain.append(p)
            p = self.parent[p]
        return chain

    def validate(self) -> None:
        """Check Definition 2 and Lemma 2; raise on any violation."""
        self._check_node_coverage()
        self._check_edge_coverage()
        self._check_running_intersection()
        self._check_lemma2()

    def _check_node_coverage(self) -> None:
        covered: set[int] = set()
        for bag in self.bags:
            covered.update(bag)
        expected = set(self.graph.nodes())
        if covered != expected:
            missing = sorted(expected - covered)
            raise DecompositionError(f"bags do not cover nodes; missing {missing[:5]}")

    def _check_edge_coverage(self) -> None:
        bag_sets = [set(bag) for bag in self.bags]
        membership: dict[int, list[int]] = {}
        for i, bag in enumerate(self.bags):
            for v in bag:
                membership.setdefault(v, []).append(i)
        for u, v, _ in self.graph.edges():
            candidate_bags = membership.get(u, [])
            if not any(v in bag_sets[i] for i in candidate_bags):
                raise DecompositionError(f"edge ({u}, {v}) is covered by no bag")

    def _check_running_intersection(self) -> None:
        # Definition 2(3) is equivalent to: the bags containing any node v
        # induce a connected subtree.
        membership: dict[int, set[int]] = {}
        for i, bag in enumerate(self.bags):
            for v in bag:
                membership.setdefault(v, set()).add(i)
        for v, holders in membership.items():
            start = next(iter(holders))
            seen = {start}
            queue = deque([start])
            while queue:
                i = queue.popleft()
                neighbors = list(self.children[i])
                if self.parent[i] is not None:
                    neighbors.append(self.parent[i])
                for j in neighbors:
                    if j in holders and j not in seen:
                        seen.add(j)
                        queue.append(j)
            if seen != holders:
                raise DecompositionError(f"bags containing node {v} are not connected")

    def _check_lemma2(self) -> None:
        # v_i may only appear in bags of descendants of bag i, i.e. every
        # bag containing v_i must reach bag i by walking parents.
        for i, bag in enumerate(self.bags):
            for v in bag:
                owner = self.position[v]
                j = i
                while j is not None and j != owner:
                    j = self.parent[j]
                if j != owner:
                    raise DecompositionError(
                        f"node {v} occurs in bag {i} which is not a descendant of bag {owner}"
                    )


def mde_tree_decomposition(graph: Graph) -> TreeDecomposition:
    """Full MDE-based tree decomposition of ``graph`` (Section 3.2.1)."""
    result = minimum_degree_elimination(graph, bandwidth=None)
    return decomposition_from_elimination(result)


def decomposition_from_elimination(result: EliminationResult) -> TreeDecomposition:
    """Assemble the rooted decomposition from a *complete* MDE run."""
    if result.core_nodes:
        raise DecompositionError(
            "elimination stopped early (non-empty core); "
            "a full tree decomposition needs bandwidth=None"
        )
    order = result.eliminated_order()
    bags: list[tuple[int, ...]] = []
    parent: list[int | None] = []
    for step in result.steps:
        bags.append(tuple(sorted((step.node,) + step.neighbors)))
        if step.neighbors:
            parent.append(min(result.position[u] for u in step.neighbors))
        else:
            parent.append(None)
    return TreeDecomposition(graph=result.graph, bags=bags, order=order, parent=parent)


def mde_treewidth(graph: Graph) -> int:
    """MDE-based treewidth: the width of the full MDE decomposition.

    An upper bound on the true treewidth ``tw(G)`` (computing which is
    NP-complete); the quantity the paper's index-size bounds are stated
    in terms of.
    """
    return minimum_degree_elimination(graph, bandwidth=None).width
