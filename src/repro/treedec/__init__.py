"""Tree decomposition machinery: MDE, core-tree decomposition, LCA."""

from repro.treedec.core_tree import CoreTreeDecomposition, core_tree_decomposition
from repro.treedec.decomposition import (
    TreeDecomposition,
    decomposition_from_elimination,
    mde_tree_decomposition,
    mde_treewidth,
)
from repro.treedec.elimination import (
    EliminationResult,
    EliminationStep,
    elimination_width_profile,
    minimum_degree_elimination,
)
from repro.treedec.lca import ForestLCA, naive_lca
from repro.treedec.treewidth import TreewidthBounds, mmd_plus_lower_bound, treewidth_bounds

__all__ = [
    "CoreTreeDecomposition",
    "EliminationResult",
    "EliminationStep",
    "ForestLCA",
    "TreeDecomposition",
    "TreewidthBounds",
    "core_tree_decomposition",
    "decomposition_from_elimination",
    "elimination_width_profile",
    "mde_tree_decomposition",
    "mde_treewidth",
    "minimum_degree_elimination",
    "mmd_plus_lower_bound",
    "naive_lca",
    "treewidth_bounds",
]
