"""Treewidth bounds.

Computing treewidth exactly is NP-complete ([4] in the paper), so the
library works with bounds:

* **upper bound** — the MDE-based treewidth (width of the heuristic
  decomposition, :func:`repro.treedec.decomposition.mde_treewidth`);
* **lower bounds** — degeneracy, and the stronger MMD+ (maximum minimum
  degree with least-degree-neighbour contraction) heuristic implemented
  here.

The gap between the bounds brackets ``tw(G)``, the quantity Theorem 1
ties to the 2-hop complexity ``h(G)``.
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph


@dataclasses.dataclass(frozen=True)
class TreewidthBounds:
    """A bracket ``lower <= tw(G) <= upper``."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ConfigurationError(f"invalid bracket [{self.lower}, {self.upper}]")


def mmd_plus_lower_bound(graph: Graph) -> int:
    """MMD+ treewidth lower bound (Bodlaender–Koster family).

    Repeatedly record the minimum degree, then *contract* the minimum-
    degree node into its least-degree neighbour (contraction preserves a
    minor, and treewidth is minor-monotone, so the running maximum of
    the minimum degrees lower-bounds tw(G)).
    """
    adjacency: list[set[int] | None] = [set(graph.neighbor_ids(v)) for v in graph.nodes()]
    heap = [(len(adjacency[v] or ()), v) for v in graph.nodes()]
    heapq.heapify(heap)
    best = 0
    alive = graph.n
    while alive > 1:
        degree, v = heapq.heappop(heap)
        row = adjacency[v]
        if row is None or degree != len(row):
            continue
        best = max(best, degree)
        if not row:
            adjacency[v] = None
            alive -= 1
            continue
        # Contract v into its least-degree neighbour.
        target = min(row, key=lambda u: len(adjacency[u] or ()))
        target_row = adjacency[target]
        assert target_row is not None
        for u in row:
            if u == target:
                continue
            u_row = adjacency[u]
            assert u_row is not None
            u_row.discard(v)
            u_row.add(target)
            target_row.add(u)
            heapq.heappush(heap, (len(u_row), u))
        target_row.discard(v)
        adjacency[v] = None
        alive -= 1
        heapq.heappush(heap, (len(target_row), target))
    return best


def treewidth_bounds(graph: Graph) -> TreewidthBounds:
    """Bracket ``tw(G)`` between MMD+/degeneracy and the MDE width."""
    from repro.graphs.statistics import degeneracy
    from repro.treedec.decomposition import mde_treewidth

    lower = max(mmd_plus_lower_bound(graph), degeneracy(graph))
    upper = max(lower, mde_treewidth(graph))
    return TreewidthBounds(lower=lower, upper=upper)
