"""Core-tree decomposition (Section 4.3).

Given a bandwidth ``d``, the MDE prefix (bags of at most ``d + 1``
nodes) forms a forest ``F`` of small bags, and the residual nodes form the core ``B_c``.
Per eliminated node this module derives the parent ``f(i)``, the root
function ``r(i)``, tree depths, the per-tree *interface* (the core
neighbors ``N_r`` of the root bag — at most ``d`` nodes), and an O(1) LCA
over the forest.  This is the skeleton both CT-Index and the CD baseline
hang their labels on.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import DecompositionError
from repro.graphs.graph import Graph, Weight
from repro.treedec.elimination import EliminationResult, minimum_degree_elimination
from repro.treedec.lca import ForestLCA


@dataclasses.dataclass
class CoreTreeDecomposition:
    """The forest/core split produced by bandwidth-bounded MDE.

    All per-node arrays are indexed by *elimination position* (0-based);
    use :attr:`position` to translate node ids.

    Attributes
    ----------
    elimination:
        The underlying bounded MDE run (bags, local distances, core).
    parent:
        ``parent[i]`` is the elimination position of bag ``i``'s parent
        inside the forest, or ``None`` when bag ``i`` is a tree root
        (its parent bag lies in the core, or it has no neighbors).
    root:
        ``root[i]`` — position of the root ``r(i)`` of ``i``'s tree.
    depth:
        ``depth[i]`` — 0 at roots, parent depth + 1 below.
    interface:
        ``interface[r]`` for each root position ``r``: the sorted core
        node ids of ``N_r`` (size <= d by construction).
    """

    elimination: EliminationResult
    parent: list[int | None]
    root: list[int]
    depth: list[int]
    interface: dict[int, tuple[int, ...]]

    def __post_init__(self) -> None:
        self._lca = ForestLCA(self.parent)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The decomposed graph."""
        return self.elimination.graph

    @property
    def bandwidth(self) -> int:
        """The ``d`` this decomposition was built with."""
        assert self.elimination.bandwidth is not None
        return self.elimination.bandwidth

    @property
    def boundary(self) -> int:
        """λ — number of forest (eliminated) nodes."""
        return self.elimination.boundary

    @property
    def core_nodes(self) -> list[int]:
        """Sorted node ids of the core ``B_c``."""
        return self.elimination.core_nodes

    @property
    def position(self) -> list[int | None]:
        """Node id -> elimination position (``None`` for core nodes)."""
        return self.elimination.position

    @property
    def roots(self) -> list[int]:
        """Positions of the tree roots (the root set ``R``)."""
        return sorted(self.interface)

    def forest_height(self) -> int:
        """``h_F`` — the maximum tree height, in nodes (0 if no forest)."""
        if not self.depth:
            return 0
        return max(self.depth) + 1

    def node_at(self, position: int) -> int:
        """Node id eliminated at ``position``."""
        return self.elimination.steps[position].node

    def is_core(self, v: int) -> bool:
        """True when node ``v`` belongs to the core."""
        return self.elimination.is_core(v)

    def tree_of(self, v: int) -> int:
        """Root position of the tree containing forest node ``v``."""
        pos = self.position[v]
        if pos is None:
            raise DecompositionError(f"node {v} is a core node, not a forest node")
        return self.root[pos]

    def interface_of(self, v: int) -> tuple[int, ...]:
        """Interface node ids ``N_{r(v)}`` of forest node ``v``'s tree."""
        return self.interface[self.tree_of(v)]

    def ancestors_of(self, position: int) -> list[int]:
        """Positions on the chain from ``position``'s parent to its root."""
        chain: list[int] = []
        p = self.parent[position]
        while p is not None:
            chain.append(p)
            p = self.parent[p]
        return chain

    def lca(self, pos_u: int, pos_v: int) -> int:
        """Position of the LCA bag of two same-tree positions."""
        return self._lca.lca(pos_u, pos_v)

    def same_tree(self, pos_u: int, pos_v: int) -> bool:
        """True when two positions belong to the same tree of the forest."""
        return self._lca.same_tree(pos_u, pos_v)

    def bag_members(self, position: int) -> tuple[int, ...]:
        """Node ids of bag ``B`` at ``position`` (owner + transient neighbors)."""
        step = self.elimination.steps[position]
        return tuple(sorted((step.node,) + step.neighbors))

    def local_distance(self, position: int, u: int) -> Weight:
        """``δ⁻(u)`` recorded when the node at ``position`` was eliminated."""
        return self.elimination.steps[position].local_distance[u]

    def tree_members(self) -> dict[int, list[int]]:
        """Map root position -> positions of its tree members (incl. root)."""
        members: dict[int, list[int]] = {r: [] for r in self.interface}
        for pos, r in enumerate(self.root):
            members[r].append(pos)
        return members

    def core_graph(self) -> tuple[Graph, list[int]]:
        """Compact weighted core graph ``G_{λ+1}`` (see EliminationResult)."""
        return self.elimination.core_graph()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants of Section 4.3."""
        d = self.bandwidth
        position = self.position
        for pos, step in enumerate(self.elimination.steps):
            if len(step.neighbors) > d:
                raise DecompositionError(
                    f"bag at position {pos} has {len(step.neighbors)} neighbors, "
                    f"but elimination must stop at bandwidth {d}"
                )
            tree_neighbors = [u for u in step.neighbors if position[u] is not None]
            if tree_neighbors:
                expected_parent = min(position[u] for u in tree_neighbors)  # type: ignore[type-var]
                if self.parent[pos] != expected_parent:
                    raise DecompositionError(f"wrong parent at position {pos}")
                for u in tree_neighbors:
                    u_pos = position[u]
                    assert u_pos is not None
                    if u_pos <= pos:
                        raise DecompositionError(
                            f"neighbor {u} of bag {pos} was eliminated earlier (Lemma 2)"
                        )
            else:
                if self.parent[pos] is not None:
                    raise DecompositionError(f"position {pos} should be a root")
        for r, nodes in self.interface.items():
            if self.parent[r] is not None:
                raise DecompositionError(f"interface recorded for non-root {r}")
            if len(nodes) > d:
                raise DecompositionError(
                    f"interface of root {r} has {len(nodes)} > d = {d} nodes"
                )
            if any(not self.is_core(u) for u in nodes):
                raise DecompositionError(f"interface of root {r} contains non-core nodes")


def core_tree_decomposition(
    graph: Graph,
    bandwidth: int,
    *,
    elimination: EliminationResult | None = None,
) -> CoreTreeDecomposition:
    """Build the core-tree decomposition of ``graph`` at ``bandwidth``.

    An existing bounded :class:`EliminationResult` (with matching
    bandwidth) can be supplied to avoid re-running MDE.
    """
    if elimination is None:
        elimination = minimum_degree_elimination(graph, bandwidth=bandwidth)
    elif elimination.bandwidth != bandwidth:
        raise DecompositionError(
            f"elimination was run with bandwidth {elimination.bandwidth}, "
            f"but {bandwidth} was requested"
        )

    position = elimination.position
    boundary = elimination.boundary
    parent: list[int | None] = [None] * boundary
    root: list[int] = [0] * boundary
    depth: list[int] = [0] * boundary
    interface: dict[int, tuple[int, ...]] = {}

    for pos in range(boundary - 1, -1, -1):
        step = elimination.steps[pos]
        tree_positions = [position[u] for u in step.neighbors if position[u] is not None]
        if tree_positions:
            parent[pos] = min(tree_positions)  # f(i): earliest-eliminated neighbor
        else:
            parent[pos] = None

    # Roots and depths need a top-down sweep; parents always have larger
    # positions, so descending position order visits parents first.
    for pos in range(boundary - 1, -1, -1):
        p = parent[pos]
        if p is None:
            root[pos] = pos
            depth[pos] = 0
            step = elimination.steps[pos]
            interface[pos] = tuple(sorted(step.neighbors))
        else:
            root[pos] = root[p]
            depth[pos] = depth[p] + 1

    return CoreTreeDecomposition(
        elimination=elimination,
        parent=parent,
        root=root,
        depth=depth,
        interface=interface,
    )
