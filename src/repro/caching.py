"""LRU caching wrapper for distance indexes.

Production query streams are heavily skewed (hot landmark pairs, repeat
lookups); a small LRU in front of any :class:`DistanceIndex` converts
repeats into dictionary hits without touching the index.  The wrapper
is itself a ``DistanceIndex`` and implements the full query protocol —
``distance``, ``distances_from``, ``distances_batch`` — so it composes
with every consumer of that protocol (path reconstruction, the bench
runner, :class:`~repro.serving.QueryEngine`, ...).  Batch calls are
served entry-by-entry from the cache, and the residual misses are
forwarded to the inner index as one batch so its fast path (e.g.
CT-Index extension sharing) still applies.

Mutable inner indexes (:class:`~repro.dynamic.DeltaOverlayIndex`)
expose a ``mutation_epoch`` counter; the cache watches it on every
entry point and drops stale answers the moment the epoch moves, so a
wrapped overlay never serves a pre-mutation distance.  Base hot-swaps
deliberately do *not* bump the epoch — they are answer-preserving, so
the cached entries stay correct across a swap.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from repro.exceptions import ReproError
from repro.graphs.graph import Weight
from repro.labeling.base import DistanceIndex


class CachedDistanceIndex(DistanceIndex):
    """A bounded LRU cache over another index's ``distance``.

    Keys are unordered pairs (undirected indexes answer symmetrically);
    pass ``symmetric=False`` when wrapping a directed oracle.
    """

    method_name = "cached"

    def __init__(
        self, inner: DistanceIndex, capacity: int = 65536, *, symmetric: bool = True
    ) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be positive, got {capacity}")
        self.inner = inner
        self.capacity = capacity
        self.symmetric = symmetric
        self.method_name = f"cached({inner.method_name})"
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._cache: OrderedDict[tuple[int, int], Weight] = OrderedDict()
        self._inner_epoch = getattr(inner, "mutation_epoch", None)

    def _key(self, s: int, t: int) -> tuple[int, int]:
        return (t, s) if self.symmetric and t < s else (s, t)

    def _check_epoch(self) -> None:
        """Drop every cached answer when the inner index has mutated."""
        epoch = getattr(self.inner, "mutation_epoch", None)
        if epoch != self._inner_epoch:
            self._inner_epoch = epoch
            if self._cache:
                self._cache.clear()
                self.invalidations += 1

    def _insert(self, key: tuple[int, int], value: Weight) -> None:
        self._cache[key] = value
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def distance(self, s: int, t: int) -> Weight:
        self._check_epoch()
        key = self._key(s, t)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        value = self.inner.distance(s, t)
        self._insert(key, value)
        return value

    def distances_from(self, s: int, targets: Iterable[int]) -> list[Weight]:
        """One-to-many batch with per-entry hit/miss accounting.

        Each target is first looked up in the cache; the misses are
        answered by a single ``inner.distances_from`` call (preserving
        the inner index's batch fast path) and inserted.  A target whose
        key already appeared earlier in the same batch counts as a hit:
        it is served by that entry without extra inner work.
        """
        self._check_epoch()
        targets = list(targets)
        results: list[Weight | None] = [None] * len(targets)
        miss_keys: dict[tuple[int, int], list[int]] = {}
        miss_targets: list[int] = []
        for i, t in enumerate(targets):
            key = self._key(s, t)
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                results[i] = cached
                continue
            positions = miss_keys.get(key)
            if positions is not None:
                # Duplicate within the batch: shares the pending answer.
                self.hits += 1
                positions.append(i)
                continue
            self.misses += 1
            miss_keys[key] = [i]
            miss_targets.append(t)
        if miss_targets:
            values = self.inner.distances_from(s, miss_targets)
            for t, value in zip(miss_targets, values):
                key = self._key(s, t)
                for i in miss_keys[key]:
                    results[i] = value
                self._insert(key, value)
        return results

    def distances_batch(self, pairs: Iterable[tuple[int, int]]) -> list[Weight]:
        """Pairwise batch with per-entry hit/miss accounting.

        Mirrors :meth:`distances_from`: cached pairs are answered
        locally, the residual misses go to one ``inner.distances_batch``
        call (keeping the inner index's batch fast path), and every
        fetched answer is inserted.  A pair whose key already appeared
        earlier in the same batch counts as a hit — it shares the
        pending answer without extra inner work.
        """
        self._check_epoch()
        pairs = list(pairs)
        results: list[Weight | None] = [None] * len(pairs)
        miss_keys: dict[tuple[int, int], list[int]] = {}
        miss_pairs: list[tuple[int, int]] = []
        for i, (s, t) in enumerate(pairs):
            key = self._key(s, t)
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                results[i] = cached
                continue
            positions = miss_keys.get(key)
            if positions is not None:
                # Duplicate within the batch: shares the pending answer.
                self.hits += 1
                positions.append(i)
                continue
            self.misses += 1
            miss_keys[key] = [i]
            miss_pairs.append((s, t))
        if miss_pairs:
            values = self.inner.distances_batch(miss_pairs)
            for (s, t), value in zip(miss_pairs, values):
                key = self._key(s, t)
                for i in miss_keys[key]:
                    results[i] = value
                self._insert(key, value)
        return results

    def size_entries(self) -> int:
        """The wrapped index's entries (the cache is working memory)."""
        return self.inner.size_entries()

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop the cached answers and reset the hit/miss counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
__all__ = ["CachedDistanceIndex"]
