"""LRU caching wrapper for distance indexes.

Production query streams are heavily skewed (hot landmark pairs, repeat
lookups); a small LRU in front of any :class:`DistanceIndex` converts
repeats into dictionary hits without touching the index.  The wrapper
is itself a ``DistanceIndex``, so it composes with everything else
(path reconstruction, the bench runner, ...).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import ReproError
from repro.graphs.graph import Weight
from repro.labeling.base import DistanceIndex


class CachedDistanceIndex(DistanceIndex):
    """A bounded LRU cache over another index's ``distance``.

    Keys are unordered pairs (undirected indexes answer symmetrically);
    pass ``symmetric=False`` when wrapping a directed oracle.
    """

    method_name = "cached"

    def __init__(
        self, inner: DistanceIndex, capacity: int = 65536, *, symmetric: bool = True
    ) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be positive, got {capacity}")
        self.inner = inner
        self.capacity = capacity
        self.symmetric = symmetric
        self.method_name = f"cached({inner.method_name})"
        self.hits = 0
        self.misses = 0
        self._cache: OrderedDict[tuple[int, int], Weight] = OrderedDict()

    def distance(self, s: int, t: int) -> Weight:
        key = (t, s) if self.symmetric and t < s else (s, t)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        value = self.inner.distance(s, t)
        self._cache[key] = value
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return value

    def size_entries(self) -> int:
        """The wrapped index's entries (the cache is working memory)."""
        return self.inner.size_entries()

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop the cached answers and reset the hit/miss counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
