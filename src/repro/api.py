"""The stable public facade: five verbs over the whole library.

Everything an application needs is here — construction, persistence,
and querying — with one spelling per concept:

    import repro

    index = repro.build(graph, bandwidth=16, workers=4, backend="flat")
    repro.save(index, "index.bin", format="binary")
    index = repro.load("index.bin")
    repro.query(index, 0, 9)
    repro.query_batch(index, [(0, 9), (3, 7)])

Stability tiers (see ``docs/api.md``):

* **stable** — this module, re-exported from :mod:`repro`; signatures
  only grow keyword arguments, never change meaning.
* **supported** — the subsystem modules (``repro.core``,
  ``repro.labeling``, ``repro.serving``, ``repro.obs``, ...): public
  and tested, but their signatures may evolve with a one-release
  :class:`DeprecationWarning` shim.
* **internal** — everything prefixed with ``_`` and the ``repro.bench``
  harness internals.

Every function validates its arguments with
:mod:`repro.exceptions` types (:class:`~repro.exceptions.
ConfigurationError` subclasses both :class:`~repro.exceptions.
ReproError` and :class:`ValueError`, so either discipline of caller
catches it).
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from typing import Union

from repro.core.ct_index import CTIndex
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph, Weight

PathLike = Union[str, os.PathLike]

#: ``format=`` spellings accepted by :func:`save`.
SAVE_FORMATS = ("json", "binary")


def build(
    graph: Graph,
    bandwidth: int,
    *,
    workers: int | None = None,
    backend: str = "dict",
    order: str | None = None,
    core_backend: str = "pll",
    use_equivalence_reduction: bool = True,
    extension_cache_size: int = 256,
    kernel: str = "auto",
) -> CTIndex:
    """Build a CT-Index on ``graph`` with bandwidth ``bandwidth``.

    Thin, stable veneer over :meth:`repro.core.ct_index.CTIndex.build`
    (which also accepts a memory ``budget=``).  ``workers``,
    ``backend``, and ``kernel`` never change answers — a ``workers=N``
    flat-backend index is byte-identical to a serial dict-backend one
    once serialized, and the ``"numpy"`` query kernel
    (:mod:`repro.kernels`) is differentially verified against the
    ``"python"`` one.
    """
    return CTIndex.build(
        graph,
        bandwidth,
        workers=workers,
        backend=backend,
        order=order,
        core_backend=core_backend,
        use_equivalence_reduction=use_equivalence_reduction,
        extension_cache_size=extension_cache_size,
        kernel=kernel,
    )


def save(index: CTIndex, path: PathLike, *, format: str = "json") -> None:
    """Write ``index`` to ``path``.

    ``format`` is ``"json"`` (the inspectable interchange document) or
    ``"binary"`` (the checksummed v3 snapshot — smaller, much faster to
    reload).  :func:`load` auto-detects either, so the choice is purely
    a size/speed trade.
    """
    if format not in SAVE_FORMATS:
        raise ConfigurationError(
            f"unknown index format {format!r}; expected one of {SAVE_FORMATS}"
        )
    if format == "binary":
        from repro.storage.binary import save_ct_index_binary

        save_ct_index_binary(index, path)
    else:
        from repro.core.serialization import save_ct_index

        save_ct_index(index, path)


def load(path: PathLike, *, backend: str | None = None, mmap: bool = False) -> CTIndex:
    """Reload an index written by :func:`save` (either format).

    The format is detected from the file's leading bytes.  ``backend``
    forces the label storage of the loaded index (``"dict"`` or
    ``"flat"``); ``None`` keeps each format's natural layout.

    ``mmap=True`` memory-maps a binary snapshot read-only instead of
    copying it into process memory: start-up touches only the section
    table and CRCs, the label arrays are views over the file, and every
    process mapping the same snapshot shares one resident copy through
    the page cache.  Only valid for binary snapshots with the flat
    backend.
    """
    from repro.core.serialization import load_ct_index

    return load_ct_index(path, backend=backend, mmap=mmap)


def query(index: CTIndex, s: int, t: int) -> Weight:
    """Exact shortest-path distance between ``s`` and ``t``."""
    return index.distance(s, t)


def query_batch(
    index: CTIndex, pairs: Iterable[tuple[int, int]]
) -> list[Weight]:
    """Distances for every ``(s, t)`` pair, in input order."""
    return index.distances_batch(pairs)


def query_from(index: CTIndex, s: int, targets: Iterable[int]) -> list[Weight]:
    """Distances from one source ``s`` to every target, in input order."""
    return index.distances_from(s, targets)


__all__ = [
    "SAVE_FORMATS",
    "build",
    "load",
    "query",
    "query_batch",
    "query_from",
    "save",
]
