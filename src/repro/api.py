"""The stable public facade: five verbs over the whole library.

Everything an application needs is here — construction, persistence,
and querying — with one spelling per concept:

    import repro

    index = repro.build(graph, bandwidth=16, workers=4, backend="flat")
    repro.save(index, "index.bin", format="binary")
    index = repro.load("index.bin")
    repro.query(index, 0, 9)
    repro.query_batch(index, [(0, 9), (3, 7)])

Stability tiers (see ``docs/api.md``):

* **stable** — this module, re-exported from :mod:`repro`; signatures
  only grow keyword arguments, never change meaning.
* **supported** — the subsystem modules (``repro.core``,
  ``repro.labeling``, ``repro.serving``, ``repro.obs``, ...): public
  and tested, but their signatures may evolve with a one-release
  :class:`DeprecationWarning` shim.
* **internal** — everything prefixed with ``_`` and the ``repro.bench``
  harness internals.

Every function validates its arguments with
:mod:`repro.exceptions` types (:class:`~repro.exceptions.
ConfigurationError` subclasses both :class:`~repro.exceptions.
ReproError` and :class:`ValueError`, so either discipline of caller
catches it).
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Union

from repro.core.ct_index import CTIndex
from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph, Weight

PathLike = Union[str, os.PathLike]

#: ``format=`` spellings accepted by :func:`save`.
SAVE_FORMATS = ("json", "binary")

#: Sentinel distinguishing "kwarg not passed" from any real value, so
#: explicit kwargs can be conflict-checked against a ``config=``.
_UNSET = object()

_ORDERS = (None, "degree", "elimination", "is")
_CORE_BACKENDS = ("pll", "psl", "hopdb")
_BACKENDS = ("dict", "flat")
_KERNELS = ("auto", "numpy", "python")
_HOPDB_ORDERS = ("degree", "psl-rank")


@dataclass(frozen=True)
class BuildConfig:
    """Every build-shaping knob of :func:`build`, as one validated value.

    The build surface had sprawled to eight loose keyword arguments
    across :func:`build`, :meth:`~repro.core.ct_index.CTIndex.build`,
    and the CLI; a ``BuildConfig`` names the same knobs once, validates
    them eagerly (``__post_init__`` raises
    :class:`~repro.exceptions.ConfigurationError`), and round-trips
    through :meth:`to_dict` / :meth:`from_dict` — which is what the CLI
    ``--config config.json`` flag, bench metadata, and audit records
    embed.  The loose kwargs keep working; passing both spellings is
    fine when they agree and a :class:`ConfigurationError` when they
    conflict.

    None of the fields except ``bandwidth``, ``order``, and
    ``use_equivalence_reduction`` can change a query answer; ``workers``,
    ``backend``, ``core_backend``, and ``kernel`` are schedule/storage
    choices that build fingerprint-identical indexes.  ``hopdb_order``
    is exactness-preserving but *not* fingerprint-preserving: a
    non-degree hub order builds a different (still canonical for that
    order) label set, which is why it is restricted to
    ``core_backend="hopdb"``.
    """

    bandwidth: int = 20
    workers: int | None = None
    backend: str = "dict"
    order: str | None = None
    core_backend: str = "pll"
    use_equivalence_reduction: bool = True
    extension_cache_size: int = 256
    kernel: str = "auto"
    hopdb_order: str = "degree"

    def __post_init__(self) -> None:
        if not isinstance(self.bandwidth, int) or isinstance(self.bandwidth, bool):
            raise ConfigurationError(
                f"bandwidth must be an int, got {self.bandwidth!r}"
            )
        if self.bandwidth < 0:
            raise ConfigurationError(
                f"bandwidth must be non-negative, got {self.bandwidth}"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int)
            or isinstance(self.workers, bool)
            or self.workers < 0
        ):
            raise ConfigurationError(
                f"workers must be None or a non-negative int, got {self.workers!r}"
            )
        if self.backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )
        if self.order not in _ORDERS:
            raise ConfigurationError(
                f"unknown order {self.order!r}; expected one of "
                f"{tuple(o for o in _ORDERS if o is not None)} or None"
            )
        if self.core_backend not in _CORE_BACKENDS:
            raise ConfigurationError(
                f"unknown core_backend {self.core_backend!r}; "
                f"expected one of {_CORE_BACKENDS}"
            )
        if not isinstance(self.use_equivalence_reduction, bool):
            raise ConfigurationError(
                "use_equivalence_reduction must be a bool, got "
                f"{self.use_equivalence_reduction!r}"
            )
        if (
            not isinstance(self.extension_cache_size, int)
            or isinstance(self.extension_cache_size, bool)
            or self.extension_cache_size < 0
        ):
            raise ConfigurationError(
                "extension_cache_size must be a non-negative int, got "
                f"{self.extension_cache_size!r}"
            )
        if self.kernel not in _KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {_KERNELS}"
            )
        if self.hopdb_order not in _HOPDB_ORDERS:
            raise ConfigurationError(
                f"unknown hopdb_order {self.hopdb_order!r}; "
                f"expected one of {_HOPDB_ORDERS}"
            )
        if self.hopdb_order != "degree" and self.core_backend != "hopdb":
            raise ConfigurationError(
                f"hopdb_order={self.hopdb_order!r} tunes the hopdb backend; "
                f"it cannot be combined with core_backend={self.core_backend!r}"
            )

    def replace(self, **overrides) -> "BuildConfig":
        """A copy with ``overrides`` applied (re-validated eagerly)."""
        try:
            return dataclasses.replace(self, **overrides)
        except TypeError as exc:
            raise ConfigurationError(
                f"unknown BuildConfig field in {sorted(overrides)}"
            ) from exc

    def to_dict(self) -> dict:
        """Canonical JSON-ready form: every field, declaration order.

        The exact document ``--config config.json`` accepts and the
        bench/audit records embed; ``from_dict(to_dict())`` is identity.
        """
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "BuildConfig":
        """Parse a :meth:`to_dict` document; unknown keys are errors."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"BuildConfig document must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown BuildConfig keys {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        return cls(**data)


def build(
    graph: Graph,
    bandwidth: int | None = None,
    *,
    config: BuildConfig | None = None,
    workers=_UNSET,
    backend=_UNSET,
    order=_UNSET,
    core_backend=_UNSET,
    use_equivalence_reduction=_UNSET,
    extension_cache_size=_UNSET,
    kernel=_UNSET,
    hopdb_order=_UNSET,
) -> CTIndex:
    """Build a CT-Index on ``graph``.

    The knobs can be spelled as loose keyword arguments (as always), as
    one :class:`BuildConfig` via ``config=``, or both — explicit kwargs
    are checked against the config and a
    :class:`~repro.exceptions.ConfigurationError` is raised when the two
    spellings disagree (matching values are fine).  ``bandwidth`` is
    required unless a ``config`` supplies it.

    Thin, stable veneer over :meth:`repro.core.ct_index.CTIndex.build`
    (which also accepts a memory ``budget=``).  ``workers``,
    ``backend``, and ``kernel`` never change answers — a ``workers=N``
    flat-backend index is byte-identical to a serial dict-backend one
    once serialized, and the ``"numpy"`` kernels
    (:mod:`repro.kernels`) are differentially verified against the
    ``"python"`` ones.
    """
    from repro.deprecation import resolve_config_kwargs

    overrides = {
        "workers": workers,
        "backend": backend,
        "order": order,
        "core_backend": core_backend,
        "use_equivalence_reduction": use_equivalence_reduction,
        "extension_cache_size": extension_cache_size,
        "kernel": kernel,
        "hopdb_order": hopdb_order,
    }
    explicit = {k: v for k, v in overrides.items() if v is not _UNSET}
    if bandwidth is not None:
        explicit["bandwidth"] = bandwidth
    elif config is None:
        raise ConfigurationError(
            "bandwidth is required (pass it directly or via config=)"
        )
    resolved = resolve_config_kwargs(config, explicit, config_cls=BuildConfig)
    return CTIndex.build(
        graph,
        resolved.bandwidth,
        workers=resolved.workers,
        backend=resolved.backend,
        order=resolved.order,
        core_backend=resolved.core_backend,
        use_equivalence_reduction=resolved.use_equivalence_reduction,
        extension_cache_size=resolved.extension_cache_size,
        kernel=resolved.kernel,
        hopdb_order=resolved.hopdb_order,
    )


def save(index: CTIndex, path: PathLike, *, format: str = "json") -> None:
    """Write ``index`` to ``path``.

    ``format`` is ``"json"`` (the inspectable interchange document) or
    ``"binary"`` (the checksummed v4 snapshot — smaller, much faster to
    reload, and eligible for ``load(..., mmap=True)``).  :func:`load` auto-detects either, so the choice is purely
    a size/speed trade.
    """
    if format not in SAVE_FORMATS:
        raise ConfigurationError(
            f"unknown index format {format!r}; expected one of {SAVE_FORMATS}"
        )
    if format == "binary":
        from repro.storage.binary import save_ct_index_binary

        save_ct_index_binary(index, path)
    else:
        from repro.core.serialization import save_ct_index

        save_ct_index(index, path)


def load(path: PathLike, *, backend: str | None = None, mmap: bool = False) -> CTIndex:
    """Reload an index written by :func:`save` (either format).

    The format is detected from the file's leading bytes.  ``backend``
    forces the label storage of the loaded index (``"dict"`` or
    ``"flat"``); ``None`` keeps each format's natural layout.

    ``mmap=True`` memory-maps a binary snapshot read-only instead of
    copying it into process memory: start-up touches only the section
    table and CRCs, the label arrays are views over the file, and every
    process mapping the same snapshot shares one resident copy through
    the page cache.  Only valid for binary snapshots with the flat
    backend.
    """
    from repro.core.serialization import load_ct_index

    return load_ct_index(path, backend=backend, mmap=mmap)


def query(index: CTIndex, s: int, t: int) -> Weight:
    """Exact shortest-path distance between ``s`` and ``t``."""
    return index.distance(s, t)


def query_batch(
    index: CTIndex, pairs: Iterable[tuple[int, int]]
) -> list[Weight]:
    """Distances for every ``(s, t)`` pair, in input order."""
    return index.distances_batch(pairs)


def query_from(index: CTIndex, s: int, targets: Iterable[int]) -> list[Weight]:
    """Distances from one source ``s`` to every target, in input order."""
    return index.distances_from(s, targets)


__all__ = [
    "BuildConfig",
    "SAVE_FORMATS",
    "build",
    "load",
    "query",
    "query_batch",
    "query_from",
    "save",
]
