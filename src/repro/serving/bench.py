"""Serving-layer benchmark: one workload, three engine configurations.

Shared by the ``repro serve-bench`` CLI command and the ``serving``
entry of the experiment catalog.  The same query stream is replayed
through

1. a bare engine with the extension-label cache disabled (the old
   per-call behavior),
2. an engine with the extension-label cache on, and
3. an engine with both the extension-label cache and the pair-level
   LRU,

and each configuration's :meth:`~repro.serving.QueryEngine.stats_snapshot`
is flattened into one comparison row.  Answers are cross-checked across
configurations — caching must never change a distance.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ReproError
from repro.labeling.base import DistanceIndex
from repro.serving.engine import QueryEngine

#: (label, extension cache on?, pair cache on?) per benchmark config.
SERVE_CONFIGS = (
    ("uncached", False, False),
    ("ext-cache", True, False),
    ("ext+pair-cache", True, True),
)


def serve_bench_rows(
    index: DistanceIndex,
    pairs: Sequence[tuple[int, int]],
    *,
    cache_capacity: int = 4096,
) -> list[dict]:
    """Replay ``pairs`` through each configuration; one row per config.

    Row keys: ``config``, ``queries``, ``mean_us``, ``p95_us``,
    ``core_probes``, ``ext_hit_rate``, ``pair_hit_rate``.  Raises
    :class:`ReproError` if any configuration returns different answers
    (caching is required to be answer-preserving).
    """
    original_size = getattr(index, "extension_cache_size", None)
    baseline: list | None = None
    rows: list[dict] = []
    try:
        for label, ext_cache, pair_cache in SERVE_CONFIGS:
            if original_size is not None:
                index.extension_cache_size = (
                    (original_size or 256) if ext_cache else 0
                )
            engine = QueryEngine(
                index, cache_capacity=cache_capacity if pair_cache else None
            )
            engine.reset_stats()
            answers = [engine.query(s, t) for s, t in pairs]
            if baseline is None:
                baseline = answers
            elif answers != baseline:
                raise ReproError(
                    f"serving config {label!r} changed query answers; "
                    "caching must be answer-preserving"
                )
            rows.append(_flatten(label, engine.stats_snapshot()))
    finally:
        if original_size is not None:
            index.extension_cache_size = original_size
    return rows


def _flatten(label: str, snapshot: dict) -> dict:
    latency = snapshot["latency"].get("single", {})
    index_stats = snapshot["index"]
    extension = index_stats.get("extension_cache", {})
    pair = snapshot.get("pair_cache", {})
    return {
        "config": label,
        "queries": snapshot["queries"],
        "mean_us": round(latency.get("mean_us", 0.0), 1),
        "p95_us": round(latency.get("p95_us", 0.0), 1),
        "core_probes": index_stats.get("core_probes", 0),
        "ext_hit_rate": round(extension.get("hit_rate", 0.0), 3),
        "pair_hit_rate": round(pair.get("hit_rate", 0.0), 3),
    }
