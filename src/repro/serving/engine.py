"""The batch-aware query engine.

:class:`QueryEngine` is the serving-side face of a
:class:`~repro.labeling.base.DistanceIndex`: it accepts the three
request shapes production traffic comes in —

* ``query(s, t)`` — one pair;
* ``query_batch(pairs)`` — a pairwise batch (``distances_batch``);
* ``query_from(s, targets)`` — one-to-many (``distances_from``, which
  CT-Index answers with shared extension labels);

optionally fronts the index with a pair-level LRU
(:class:`~repro.caching.CachedDistanceIndex`), and instruments every
request: latency histograms per request kind and per CT query case,
request/query counters, cache hit rates, and core-probe counts.

The histograms live in a shared :class:`~repro.obs.registry.
MetricsRegistry` (the process-wide one by default), labeled by engine
id and request kind / query case — so a Prometheus dump of the registry
sees serving latency without any serving-specific glue.
:meth:`QueryEngine.stats_snapshot` still exports everything as plain
data for the bench harness, the ``repro serve-bench`` command, or a
monitoring pipeline.  When tracing is enabled (:mod:`repro.obs`), each
request additionally records a span — single queries carry their 4-case
attribution as a span attribute.
"""

from __future__ import annotations

import itertools
import time
from collections import Counter
from collections.abc import Iterable

from repro.caching import CachedDistanceIndex
from repro.graphs.graph import Weight
from repro.labeling.base import DistanceIndex
from repro.obs.registry import MetricsRegistry, registry as default_registry
from repro.obs.tracing import span as obs_span

#: The three request kinds the engine distinguishes in its histograms.
REQUEST_KINDS = ("single", "batch_pairs", "batch_from")

#: Case label used for single queries the index never dispatched
#: (answered by the pair cache, a twin class, or ``s == t``).
_CASE_LOCAL = "local"

#: Registry metric names the engine records under.
REQUEST_LATENCY_METRIC = "serving.request_latency"
CASE_LATENCY_METRIC = "serving.case_latency"

#: Distinguishes engines sharing one registry (label value).
_ENGINE_IDS = itertools.count()


class QueryEngine:
    """Instrumented serving front-end over any exact distance index.

    Parameters
    ----------
    index:
        The oracle to serve from.  Pass a bare index, or anything
        implementing the ``DistanceIndex`` query protocol.
    cache_capacity:
        When set, wrap ``index`` in a :class:`CachedDistanceIndex` of
        this capacity (pair-level LRU).  ``None`` serves uncached.
    symmetric:
        Forwarded to the cache wrapper (set ``False`` for directed
        oracles).  Ignored when ``cache_capacity`` is ``None``.
    registry:
        The :class:`MetricsRegistry` the latency histograms register
        in; defaults to the process-wide registry
        (:func:`repro.obs.registry`).  Histograms are labeled
        ``engine=<id>`` plus ``kind=``/``case=``, so several engines
        share one registry without clashing.
    kernel:
        Query-kernel selection forwarded to the index's ``set_kernel``
        (``"auto"`` | ``"numpy"`` | ``"python"``, see
        :mod:`repro.kernels`).  ``None`` (the default) leaves the
        index's own selection untouched.  An explicit ``"numpy"`` on an
        index without kernel support raises
        :class:`~repro.exceptions.ConfigurationError`.
    """

    def __init__(
        self,
        index: DistanceIndex,
        *,
        cache_capacity: int | None = None,
        symmetric: bool = True,
        registry: MetricsRegistry | None = None,
        kernel: str | None = None,
    ) -> None:
        self.raw_index = index
        # Unwrap cache layers up front: kernel selection and case
        # tracking both target the innermost index (a pre-wrapped
        # CachedDistanceIndex has no set_kernel of its own, so applying
        # the kernel to the wrapper would reject "numpy" and silently
        # no-op "auto"/"python").
        inner = index
        while isinstance(inner, CachedDistanceIndex):
            inner = inner.inner
        if kernel is not None:
            from repro.kernels import KERNEL_NUMPY, validate_kernel

            validate_kernel(kernel)
            set_kernel = getattr(inner, "set_kernel", None)
            if set_kernel is not None:
                set_kernel(kernel)
            elif kernel == KERNEL_NUMPY:
                from repro.exceptions import ConfigurationError

                raise ConfigurationError(
                    f"kernel='numpy' requested but {type(inner).__name__} "
                    f"has no query-kernel support"
                )
        if cache_capacity is not None:
            index = CachedDistanceIndex(index, cache_capacity, symmetric=symmetric)
        self.index = index
        self._tracked = inner if hasattr(inner, "case_counts") else None
        self.metrics_registry = registry if registry is not None else default_registry()
        self.engine_id = next(_ENGINE_IDS)
        self.request_counts: Counter[str] = Counter()
        self.queries_served = 0
        self.request_histograms = {
            kind: self.metrics_registry.histogram(
                REQUEST_LATENCY_METRIC, engine=self.engine_id, kind=kind
            )
            for kind in REQUEST_KINDS
        }
        for histogram in self.request_histograms.values():
            histogram.reset()
        self.case_histograms: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------

    def query(self, s: int, t: int) -> Weight:
        """Answer one pair, recording latency per request and per case."""
        tracker = self._tracked
        before = dict(tracker.case_counts) if tracker is not None else None
        with obs_span("serving.query") as sp:
            started = time.perf_counter()
            value = self.index.distance(s, t)
            elapsed = time.perf_counter() - started
        self.request_counts["single"] += 1
        self.queries_served += 1
        self.request_histograms["single"].record(elapsed)
        if tracker is not None:
            case = _incremented_case(before, tracker.case_counts)
            sp.set(case=case)
            histogram = self.case_histograms.get(case)
            if histogram is None:
                histogram = self.case_histograms[case] = self.metrics_registry.histogram(
                    CASE_LATENCY_METRIC, engine=self.engine_id, case=case
                )
            histogram.record(elapsed)
        return value

    def query_batch(self, pairs: Iterable[tuple[int, int]]) -> list[Weight]:
        """Answer a pairwise batch via ``distances_batch``."""
        pairs = list(pairs)
        with obs_span("serving.query_batch", size=len(pairs)):
            started = time.perf_counter()
            values = self.index.distances_batch(pairs)
            elapsed = time.perf_counter() - started
        self.request_counts["batch_pairs"] += 1
        self.queries_served += len(pairs)
        self.request_histograms["batch_pairs"].record(elapsed)
        return values

    def query_from(self, s: int, targets: Iterable[int]) -> list[Weight]:
        """Answer a one-to-many batch via ``distances_from``."""
        targets = list(targets)
        with obs_span("serving.query_from", size=len(targets)):
            started = time.perf_counter()
            values = self.index.distances_from(s, targets)
            elapsed = time.perf_counter() - started
        self.request_counts["batch_from"] += 1
        self.queries_served += len(targets)
        self.request_histograms["batch_from"].record(elapsed)
        return values

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def pair_cache(self) -> CachedDistanceIndex | None:
        """The pair-level cache wrapper, when one is configured."""
        return self.index if isinstance(self.index, CachedDistanceIndex) else None

    @property
    def mutable_index(self):
        """The mutable index under any cache layers, or ``None``.

        A :class:`~repro.dynamic.DeltaOverlayIndex` (or anything else
        exposing ``add_edge`` / ``remove_edge`` / ``apply``) qualifies;
        a static index does not.
        """
        inner = self.index
        while isinstance(inner, CachedDistanceIndex):
            inner = inner.inner
        if hasattr(inner, "add_edge") and hasattr(inner, "remove_edge"):
            return inner
        return None

    def apply_mutations(self, ops: Iterable[tuple]) -> int:
        """Apply ``(op, u, v, w)`` mutation tuples to the mutable index.

        Returns the number of effective mutations.  Raises
        :class:`~repro.exceptions.ConfigurationError` when the engine
        serves a static index; any cache layer above the overlay
        invalidates itself via the overlay's ``mutation_epoch``.
        """
        mutable = self.mutable_index
        if mutable is None:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"{type(self.raw_index).__name__} is static; wrap it in a "
                f"repro.dynamic.DeltaOverlayIndex to accept mutations"
            )
        with obs_span("serving.mutate"):
            return mutable.apply(ops)

    def stats_snapshot(self) -> dict:
        """Everything the engine measured, as one plain-data document.

        Keys: ``requests`` (count per request kind), ``queries`` (total
        individual answers), ``latency`` (histogram snapshot per request
        kind), ``cases`` (histogram snapshot per CT query case, when the
        underlying index reports cases), ``pair_cache`` (hits/misses/
        hit_rate/capacity, when caching is on), and ``index`` (method
        name, the resolved query ``kernel``, plus, for CT-Indexes, case
        counts, core probes, and the extension-cache counters).
        """
        snapshot: dict = {
            "requests": dict(self.request_counts),
            "queries": self.queries_served,
            "latency": {
                kind: histogram.snapshot()
                for kind, histogram in self.request_histograms.items()
                if histogram.count
            },
        }
        if self.case_histograms:
            snapshot["cases"] = {
                case: histogram.snapshot()
                for case, histogram in self.case_histograms.items()
            }
        cache = self.pair_cache
        if cache is not None:
            snapshot["pair_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "capacity": cache.capacity,
                "invalidations": cache.invalidations,
            }
        mutable = self.mutable_index
        if mutable is not None and hasattr(mutable, "overlay_stats"):
            snapshot["overlay"] = mutable.overlay_stats()
        index_stats: dict = {
            "method": self.raw_index.method_name,
            "kernel": getattr(self.raw_index, "kernel", "python"),
        }
        tracked = self._tracked
        if tracked is not None:
            index_stats["case_counts"] = dict(tracked.case_counts)
            index_stats["core_probes"] = tracked.core_probes
            if hasattr(tracked, "extension_cache_hits"):
                index_stats["extension_cache"] = {
                    "hits": tracked.extension_cache_hits,
                    "misses": tracked.extension_cache_misses,
                    "hit_rate": tracked.extension_cache_hit_rate,
                    "size": tracked.extension_cache_size,
                }
        snapshot["index"] = index_stats
        return snapshot

    def reset_stats(self, *, reset_index: bool = True) -> None:
        """Zero the engine's counters and histograms.

        Histograms are reset in place — registry entries (and any
        monitoring handle onto them) keep their identity.  With
        ``reset_index`` (the default) the pair cache is cleared and the
        underlying index's query counters/extension cache are reset too,
        so back-to-back measurement runs start cold.
        """
        self.request_counts.clear()
        self.queries_served = 0
        for histogram in self.request_histograms.values():
            histogram.reset()
        for histogram in self.case_histograms.values():
            histogram.reset()
        self.case_histograms = {}
        if reset_index:
            cache = self.pair_cache
            if cache is not None:
                cache.clear()
            reset = getattr(self._tracked, "reset_counters", None)
            if reset is not None:
                reset()


def _incremented_case(before: dict[str, int] | None, after: Counter[str]) -> str:
    """Which query-case counter a single query bumped (``local`` if none)."""
    if before is not None:
        for case, count in after.items():
            if count != before.get(case, 0):
                return case
    return _CASE_LOCAL
__all__ = [
    "CASE_LATENCY_METRIC",
    "QueryEngine",
    "REQUEST_KINDS",
    "REQUEST_LATENCY_METRIC",
]
