"""The batch-aware query engine.

:class:`QueryEngine` is the serving-side face of a
:class:`~repro.labeling.base.DistanceIndex`: it accepts the three
request shapes production traffic comes in —

* ``query(s, t)`` — one pair;
* ``query_batch(pairs)`` — a pairwise batch (``distances_batch``);
* ``query_from(s, targets)`` — one-to-many (``distances_from``, which
  CT-Index answers with shared extension labels);

optionally fronts the index with a pair-level LRU
(:class:`~repro.caching.CachedDistanceIndex`), and instruments every
request: latency histograms per request kind and per CT query case,
request/query counters, cache hit rates, and core-probe counts.
:meth:`QueryEngine.stats_snapshot` exports everything as plain data for
the bench harness, the ``repro serve-bench`` command, or a monitoring
pipeline.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Iterable

from repro.caching import CachedDistanceIndex
from repro.graphs.graph import Weight
from repro.labeling.base import DistanceIndex
from repro.serving.metrics import LatencyHistogram

#: The three request kinds the engine distinguishes in its histograms.
REQUEST_KINDS = ("single", "batch_pairs", "batch_from")

#: Case label used for single queries the index never dispatched
#: (answered by the pair cache, a twin class, or ``s == t``).
_CASE_LOCAL = "local"


class QueryEngine:
    """Instrumented serving front-end over any exact distance index.

    Parameters
    ----------
    index:
        The oracle to serve from.  Pass a bare index, or anything
        implementing the ``DistanceIndex`` query protocol.
    cache_capacity:
        When set, wrap ``index`` in a :class:`CachedDistanceIndex` of
        this capacity (pair-level LRU).  ``None`` serves uncached.
    symmetric:
        Forwarded to the cache wrapper (set ``False`` for directed
        oracles).  Ignored when ``cache_capacity`` is ``None``.
    """

    def __init__(
        self,
        index: DistanceIndex,
        *,
        cache_capacity: int | None = None,
        symmetric: bool = True,
    ) -> None:
        self.raw_index = index
        if cache_capacity is not None:
            index = CachedDistanceIndex(index, cache_capacity, symmetric=symmetric)
        self.index = index
        # Unwrap cache layers to find the index that tracks query cases
        # (works whether the caller pre-wrapped or used cache_capacity).
        inner = index
        while isinstance(inner, CachedDistanceIndex):
            inner = inner.inner
        self._tracked = inner if hasattr(inner, "case_counts") else None
        self.request_counts: Counter[str] = Counter()
        self.queries_served = 0
        self.request_histograms = {kind: LatencyHistogram() for kind in REQUEST_KINDS}
        self.case_histograms: dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------

    def query(self, s: int, t: int) -> Weight:
        """Answer one pair, recording latency per request and per case."""
        tracker = self._tracked
        before = dict(tracker.case_counts) if tracker is not None else None
        started = time.perf_counter()
        value = self.index.distance(s, t)
        elapsed = time.perf_counter() - started
        self.request_counts["single"] += 1
        self.queries_served += 1
        self.request_histograms["single"].record(elapsed)
        if tracker is not None:
            case = _incremented_case(before, tracker.case_counts)
            histogram = self.case_histograms.get(case)
            if histogram is None:
                histogram = self.case_histograms[case] = LatencyHistogram()
            histogram.record(elapsed)
        return value

    def query_batch(self, pairs: Iterable[tuple[int, int]]) -> list[Weight]:
        """Answer a pairwise batch via ``distances_batch``."""
        pairs = list(pairs)
        started = time.perf_counter()
        values = self.index.distances_batch(pairs)
        elapsed = time.perf_counter() - started
        self.request_counts["batch_pairs"] += 1
        self.queries_served += len(pairs)
        self.request_histograms["batch_pairs"].record(elapsed)
        return values

    def query_from(self, s: int, targets: Iterable[int]) -> list[Weight]:
        """Answer a one-to-many batch via ``distances_from``."""
        targets = list(targets)
        started = time.perf_counter()
        values = self.index.distances_from(s, targets)
        elapsed = time.perf_counter() - started
        self.request_counts["batch_from"] += 1
        self.queries_served += len(targets)
        self.request_histograms["batch_from"].record(elapsed)
        return values

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def pair_cache(self) -> CachedDistanceIndex | None:
        """The pair-level cache wrapper, when one is configured."""
        return self.index if isinstance(self.index, CachedDistanceIndex) else None

    def stats_snapshot(self) -> dict:
        """Everything the engine measured, as one plain-data document.

        Keys: ``requests`` (count per request kind), ``queries`` (total
        individual answers), ``latency`` (histogram snapshot per request
        kind), ``cases`` (histogram snapshot per CT query case, when the
        underlying index reports cases), ``pair_cache`` (hits/misses/
        hit_rate/capacity, when caching is on), and ``index`` (method
        name plus, for CT-Indexes, case counts, core probes, and the
        extension-cache counters).
        """
        snapshot: dict = {
            "requests": dict(self.request_counts),
            "queries": self.queries_served,
            "latency": {
                kind: histogram.snapshot()
                for kind, histogram in self.request_histograms.items()
                if histogram.count
            },
        }
        if self.case_histograms:
            snapshot["cases"] = {
                case: histogram.snapshot()
                for case, histogram in self.case_histograms.items()
            }
        cache = self.pair_cache
        if cache is not None:
            snapshot["pair_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "capacity": cache.capacity,
            }
        index_stats: dict = {"method": self.raw_index.method_name}
        tracked = self._tracked
        if tracked is not None:
            index_stats["case_counts"] = dict(tracked.case_counts)
            index_stats["core_probes"] = tracked.core_probes
            if hasattr(tracked, "extension_cache_hits"):
                index_stats["extension_cache"] = {
                    "hits": tracked.extension_cache_hits,
                    "misses": tracked.extension_cache_misses,
                    "hit_rate": tracked.extension_cache_hit_rate,
                    "size": tracked.extension_cache_size,
                }
        snapshot["index"] = index_stats
        return snapshot

    def reset_stats(self, *, reset_index: bool = True) -> None:
        """Zero the engine's counters and histograms.

        With ``reset_index`` (the default) the pair cache is cleared and
        the underlying index's query counters/extension cache are reset
        too, so back-to-back measurement runs start cold.
        """
        self.request_counts.clear()
        self.queries_served = 0
        self.request_histograms = {kind: LatencyHistogram() for kind in REQUEST_KINDS}
        self.case_histograms = {}
        if reset_index:
            cache = self.pair_cache
            if cache is not None:
                cache.clear()
            reset = getattr(self._tracked, "reset_counters", None)
            if reset is not None:
                reset()


def _incremented_case(before: dict[str, int] | None, after: Counter[str]) -> str:
    """Which query-case counter a single query bumped (``local`` if none)."""
    if before is not None:
        for case, count in after.items():
            if count != before.get(case, 0):
                return case
    return _CASE_LOCAL
