"""Query serving layer: batch-aware engine + observability.

The library's indexes are per-call oracles; this package turns them
into an instrumented service.  :class:`QueryEngine` accepts single,
pairwise-batch, and one-to-many-batch requests over any
:class:`~repro.labeling.base.DistanceIndex`, optionally fronts it with
a :class:`~repro.caching.CachedDistanceIndex`, and keeps latency
histograms, request counters, and (for CT-Indexes) per-case and
core-probe statistics that :meth:`QueryEngine.stats_snapshot` exports
for the bench harness and the ``repro serve-bench`` CLI command.

:class:`ServingFleet` (:mod:`repro.serving.fleet`) scales the engine
out to N worker processes that all memory-map one binary snapshot —
shared label pages, tree-affinity request routing, verifiable
fingerprint identity — measured by ``repro fleet-bench``.
"""

from repro.serving.engine import QueryEngine
from repro.serving.fleet import FleetError, ServingFleet
from repro.serving.metrics import LatencyHistogram

__all__ = ["FleetError", "LatencyHistogram", "QueryEngine", "ServingFleet"]
