"""Query serving layer: batch-aware engine, process fleet, network front-end.

The library's indexes are per-call oracles; this package turns them
into an instrumented service, layer by layer:

* :class:`QueryEngine` (:mod:`repro.serving.engine`) accepts single,
  pairwise-batch, and one-to-many-batch requests over any
  :class:`~repro.labeling.base.DistanceIndex`, optionally fronts it
  with a :class:`~repro.caching.CachedDistanceIndex`, and keeps
  latency histograms, request counters, and (for CT-Indexes) per-case
  and core-probe statistics that :meth:`QueryEngine.stats_snapshot`
  exports for the bench harness and the ``repro serve-bench`` CLI
  command.

* :class:`ServingFleet` (:mod:`repro.serving.fleet`) scales the engine
  out to N worker processes that all memory-map one binary snapshot —
  shared label pages, tree-affinity request routing, verifiable
  fingerprint identity — measured by ``repro fleet-bench``.

* :class:`DistanceServer` (:mod:`repro.serving.server`, experimental)
  puts either behind an asyncio HTTP front-end (``repro serve``):
  single-pair requests micro-batched into ``query_batch`` calls,
  bounded-queue admission control with 429 backpressure, graceful
  drain on SIGTERM, ``/metrics`` + ``/healthz``, and a per-run
  ``artifact.json`` / ``eval_history.jsonl`` audit record
  (:mod:`repro.serving.audit`) — load-tested by ``repro server-bench``
  with :class:`~repro.serving.client.ServeClient`.

Every serving-tier error derives from :class:`ServingError`.
"""

from repro.serving.client import ServeClient, ServeResponseError
from repro.serving.engine import QueryEngine
from repro.serving.errors import AuditError, ServingError
from repro.serving.fleet import FleetError, ServingFleet
from repro.serving.metrics import LatencyHistogram
from repro.serving.server import DistanceServer, ServerConfig, serve_forever

__all__ = [
    "AuditError",
    "DistanceServer",
    "FleetError",
    "LatencyHistogram",
    "QueryEngine",
    "ServeClient",
    "ServeResponseError",
    "ServerConfig",
    "ServingError",
    "ServingFleet",
    "serve_forever",
]
