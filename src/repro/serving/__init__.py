"""Query serving layer: batch-aware engine + observability.

The library's indexes are per-call oracles; this package turns them
into an instrumented service.  :class:`QueryEngine` accepts single,
pairwise-batch, and one-to-many-batch requests over any
:class:`~repro.labeling.base.DistanceIndex`, optionally fronts it with
a :class:`~repro.caching.CachedDistanceIndex`, and keeps latency
histograms, request counters, and (for CT-Indexes) per-case and
core-probe statistics that :meth:`QueryEngine.stats_snapshot` exports
for the bench harness and the ``repro serve-bench`` CLI command.
"""

from repro.serving.engine import QueryEngine
from repro.serving.metrics import LatencyHistogram

__all__ = ["LatencyHistogram", "QueryEngine"]
