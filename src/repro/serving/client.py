"""Minimal async HTTP client for the serving front-end.

The protocol-level test harness and the ``repro server-bench`` load
generator both need to speak the server's wire format exactly — one
keep-alive HTTP/1.1 connection per client, JSON bodies, the ``"inf"``
weight sentinel — without pulling in an HTTP dependency.
:class:`ServeClient` is that thin: connect, send, parse, decode.

Error contract: a non-2xx response raises :class:`ServeResponseError`
carrying the HTTP status and the server's structured ``error`` code,
so a test can assert *which* rejection happened (``overloaded`` vs
``draining`` vs ``bad_request``).  The raw :meth:`ServeClient.request`
escape hatch returns ``(status, body)`` unjudged — that is what
malformed-payload tests use.
"""

from __future__ import annotations

import asyncio
import json

from repro.serving.audit import decode_weight
from repro.serving.errors import ServingError


class ServeResponseError(ServingError):
    """The server answered with a non-2xx status."""

    def __init__(self, status: int, error: str, detail: str = "") -> None:
        super().__init__(f"HTTP {status} {error}: {detail}")
        self.status = status
        self.error = error
        self.detail = detail


class ServeClient:
    """One keep-alive connection to a :class:`~repro.serving.server.DistanceServer`.

    Usable as an async context manager::

        async with ServeClient(host, port) as client:
            await client.query(0, 5)
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        raw_body: bytes | None = None,
        content_type: str = "application/json",
    ):
        """One round trip; returns ``(status, parsed_body)``.

        JSON response bodies are parsed; anything else (``/metrics``)
        comes back as text.  ``raw_body`` sends arbitrary bytes — the
        malformed-request tests use it to ship invalid JSON.
        """
        if self._writer is None or self._writer.is_closing():
            await self.connect()
        body = raw_body
        if body is None:
            body = (
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else b""
            )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        return await asyncio.wait_for(self._read_response(), self.timeout)

    async def _read_response(self):
        blob = await self._reader.readuntil(b"\r\n\r\n")
        head = blob.decode("latin-1").split("\r\n")
        status = int(head[0].split()[1])
        headers: dict[str, str] = {}
        for line in head[1:]:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if headers.get("content-type", "").startswith("application/json"):
            return status, json.loads(body) if body else None
        return status, body.decode("utf-8")

    @staticmethod
    def _judge(status: int, document) -> dict:
        if 200 <= status < 300:
            return document
        error, detail = "unknown", ""
        if isinstance(document, dict):
            error = document.get("error", "unknown")
            detail = document.get("detail", "")
        raise ServeResponseError(status, error, detail)

    # ------------------------------------------------------------------
    # Typed entry points
    # ------------------------------------------------------------------

    async def query(self, s: int, t: int):
        """One pair; returns the distance (``math.inf`` decoded)."""
        status, document = await self.request(
            "POST", "/query", {"s": s, "t": t}
        )
        return decode_weight(self._judge(status, document)["distance"])

    async def query_batch(self, pairs) -> list:
        """A pairwise batch; distances in input order."""
        status, document = await self.request(
            "POST", "/query/batch", {"pairs": [list(pair) for pair in pairs]}
        )
        return [
            decode_weight(v) for v in self._judge(status, document)["distances"]
        ]

    async def query_from(self, s: int, targets) -> list:
        """One-to-many; distances in target order."""
        status, document = await self.request(
            "POST", "/query/from", {"s": s, "targets": list(targets)}
        )
        return [
            decode_weight(v) for v in self._judge(status, document)["distances"]
        ]

    async def healthz(self):
        """``(status_code, payload)`` — 503 while draining, by design."""
        return await self.request("GET", "/healthz")

    async def metrics(self) -> str:
        """The Prometheus text exposition."""
        status, text = await self.request("GET", "/metrics")
        if status != 200:
            raise ServeResponseError(status, "metrics_unavailable")
        return text

    async def stats(self) -> dict:
        """The server's ``/stats`` document."""
        status, document = await self.request("GET", "/stats")
        return self._judge(status, document)


__all__ = ["ServeClient", "ServeResponseError"]
