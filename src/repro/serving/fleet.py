"""Multi-process serving fleet over one memory-mapped snapshot.

One process can only exploit one core, and a CT-Index is read-only at
serving time — the natural scale-out is N worker processes each
mapping the *same* binary snapshot with ``mmap=True``.  The mapped
label pages are shared through the OS page cache, so N workers cost
roughly one index of resident memory plus N small interpreter heaps,
not N full copies (the measurement ``repro fleet-bench`` records).

Topology:

* The parent (:class:`ServingFleet`) maps the snapshot too — cheaply,
  thanks to the lazy mapped load — and acts as the request router.
* Each worker (:func:`_worker_main`, spawn-picklable) maps the
  snapshot, wraps it in a :class:`~repro.serving.engine.QueryEngine`,
  and serves a request loop over its own ``multiprocessing`` request
  queue; answers come back on that worker's own response queue tagged
  with request ids.  Response channels are deliberately *not* shared:
  a worker SIGKILLed while its queue feeder thread holds a shared
  write lock would leave the lock acquired forever and silence every
  surviving writer.  With one queue per worker, a wedged channel can
  only belong to a dead worker — which the liveness check in
  :meth:`ServingFleet._collect` turns into a :class:`FleetError`
  instead of a hang.
* Routing is **affinity only**: every worker holds the full index and
  can answer any pair, but sources from the same tree of the forest
  are steered to the same worker so its extension-label LRU and pair
  cache stay hot.  Trees are assigned to workers with the same LPT
  balancing the parallel builder uses
  (:func:`repro.parallel.chunking.balanced_tasks`, one task per
  worker), weighted by tree size; core sources round-robin.

Workers shut down gracefully: :meth:`ServingFleet.shutdown` (also run
by the context manager) sends each worker a shutdown message, waits
for the acknowledgement, and joins the process — ``terminate`` is the
last resort for a worker that stopped draining its queue.

Identity is verifiable end to end: :meth:`ServingFleet.fingerprints`
asks every worker for the SHA-256 of its
:func:`~repro.core.serialization.index_fingerprint` and compares it to
the parent's own digest, so a fleet can prove all workers serve the
same index the parent routed for.  ``repro fleet-bench`` records no
throughput row until that check and a full answer-identity replay
against single-process serving both pass.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import queue as queue_module
import time
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.serving.errors import ServingError

#: How long (seconds) the parent waits for a worker to map the
#: snapshot and report ready before declaring the start failed.
START_TIMEOUT = 60.0

#: How long the parent waits for a shutdown acknowledgement before
#: escalating to ``terminate``.
SHUTDOWN_TIMEOUT = 10.0

#: How often (seconds) a blocked :meth:`ServingFleet._collect` checks
#: whether the worker owning the awaited request is still alive.
LIVENESS_POLL_SECONDS = 0.2


#: Sentinel for "no response yet" (a real payload may be ``None``).
_NO_RESPONSE = object()


class FleetError(ServingError):
    """A worker failed to start, answer, or verify."""


class BatchTicket:
    """An in-flight :meth:`ServingFleet.submit_batch` dispatch."""

    __slots__ = ("size", "sent")

    def __init__(self, size: int, sent: list) -> None:
        self.size = size
        self.sent = sent


def _resident_kb() -> int:
    """This process's resident set size in KiB (Linux ``/proc``; 0 if unknown)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def _fingerprint_digest(index) -> str:
    """SHA-256 hex digest of the index's canonical fingerprint."""
    from repro.core.serialization import index_fingerprint

    return hashlib.sha256(index_fingerprint(index)).hexdigest()


def _worker_main(
    worker_id: int,
    snapshot_path: str,
    kernel: str | None,
    cache_capacity: int | None,
    requests,
    responses,
) -> None:
    """One fleet worker: map the snapshot, serve the request loop.

    Module-level (not a closure) so the spawn start method can pickle
    it.  Every response is ``(worker_id, req_id, status, payload)``
    with ``status`` ``"ok"`` or ``"error"``; the loop never lets an
    exception escape a request — the error text is the payload and the
    loop keeps serving.
    """
    from repro.serving.engine import QueryEngine
    from repro.storage.binary import load_ct_index_binary

    try:
        index = load_ct_index_binary(snapshot_path, mmap=True)
        engine = QueryEngine(index, kernel=kernel, cache_capacity=cache_capacity)
    except Exception as exc:  # noqa: BLE001 - report, parent raises
        responses.put((worker_id, "_ready", "error", repr(exc)))
        return
    responses.put((worker_id, "_ready", "ok", os.getpid()))
    while True:
        message = requests.get()
        kind, req_id = message[0], message[1]
        if kind == "shutdown":
            responses.put((worker_id, req_id, "ok", None))
            return
        try:
            if kind == "query":
                payload = engine.query(message[2], message[3])
            elif kind == "batch":
                payload = engine.query_batch(message[2])
            elif kind == "from":
                payload = engine.query_from(message[2], message[3])
            elif kind == "stats":
                payload = engine.stats_snapshot()
            elif kind == "fingerprint":
                payload = _fingerprint_digest(index)
            elif kind == "rss":
                payload = _resident_kb()
            else:
                raise FleetError(f"unknown fleet request kind {kind!r}")
        except Exception as exc:  # noqa: BLE001 - serialized to parent
            responses.put((worker_id, req_id, "error", repr(exc)))
        else:
            responses.put((worker_id, req_id, "ok", payload))


class ServingFleet:
    """Route distance queries across N snapshot-mapping worker processes.

    Parameters
    ----------
    snapshot_path:
        A v4 binary snapshot (``repro.save(..., format="binary")``).
        Every worker maps it with ``mmap=True``.
    workers:
        Process count (>= 1).
    kernel:
        Forwarded to each worker's :class:`QueryEngine` (``"numpy"`` /
        ``"python"`` / ``"auto"``; ``None`` keeps the index default).
    cache_capacity:
        Per-worker pair-cache capacity (``None`` serves uncached).

    The fleet is a context manager::

        with ServingFleet("index.bin", workers=4) as fleet:
            fleet.verify()
            fleet.query_batch(pairs)
    """

    def __init__(
        self,
        snapshot_path,
        workers: int = 2,
        *,
        kernel: str | None = None,
        cache_capacity: int | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"fleet worker count must be positive, got {workers}"
            )
        from repro.storage.binary import load_ct_index_binary

        self.snapshot_path = Path(snapshot_path)
        self.workers = workers
        self.kernel = kernel
        self.cache_capacity = cache_capacity
        # The parent maps the snapshot for routing metadata only (the
        # lazy mapped load makes this near-free) and never answers
        # queries itself.
        self._index = load_ct_index_binary(self.snapshot_path, mmap=True)
        self._route = _TreeRouter(self._index, workers)
        self._req_ids = itertools.count()
        self._pending: dict[int, tuple[int, str, object]] = {}
        #: req_id -> worker id, for liveness checks while waiting.
        self._owner: dict[int, int] = {}
        self._closed = False

        ctx = multiprocessing.get_context("spawn")
        # One response queue per worker (see the module docstring): a
        # shared queue's write lock outlives a worker killed mid-write
        # and would wedge every surviving worker's answers.
        self._responses = [ctx.Queue() for _ in range(workers)]
        self._requests = [ctx.Queue() for _ in range(workers)]
        self._processes = [
            ctx.Process(
                target=_worker_main,
                args=(
                    i,
                    str(self.snapshot_path),
                    kernel,
                    cache_capacity,
                    self._requests[i],
                    self._responses[i],
                ),
                daemon=True,
            )
            for i in range(workers)
        ]
        for process in self._processes:
            process.start()
        try:
            deadline = time.monotonic() + START_TIMEOUT
            for i in range(workers):
                while True:
                    try:
                        worker_id, req_id, status, payload = self._responses[i].get(
                            timeout=LIVENESS_POLL_SECONDS
                        )
                        break
                    except queue_module.Empty:
                        if not self._processes[i].is_alive():
                            raise FleetError(
                                f"fleet worker {i} died during startup "
                                f"(exit code {self._processes[i].exitcode})"
                            ) from None
                        if time.monotonic() >= deadline:
                            raise FleetError(
                                f"fleet worker {i} failed to report ready "
                                f"within {START_TIMEOUT:.0f}s"
                            ) from None
                if req_id != "_ready":  # pragma: no cover - protocol guard
                    raise FleetError(f"unexpected pre-ready message {req_id!r}")
                if status != "ok":
                    raise FleetError(f"fleet worker {worker_id} failed to start: {payload}")
        except Exception:
            self._kill()
            raise

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------

    def query(self, s: int, t: int):
        """One pair, answered by the worker owning ``s``'s tree."""
        worker = self._route.worker_for(s)
        return self._collect(self._send(worker, "query", s, t))

    def query_batch(self, pairs) -> list:
        """A pairwise batch, sharded by source affinity.

        Pairs are grouped by their source's worker and each group is
        sent as one sub-batch, so the groups run concurrently across
        the fleet; answers come back in input order.
        """
        return self.gather(self.submit_batch(pairs))

    def submit_batch(self, pairs) -> "BatchTicket":
        """Dispatch a batch without waiting (pipelined serving).

        The pairs are sharded and enqueued to their affinity workers
        immediately; the returned ticket is redeemed with
        :meth:`gather`.  Submitting several batches before gathering
        the first keeps every worker busy across batch boundaries —
        the shape a loaded server (and ``repro fleet-bench``) runs.
        """
        pairs = list(pairs)
        groups: dict[int, list[int]] = {}
        for i, (s, _) in enumerate(pairs):
            groups.setdefault(self._route.worker_for(s), []).append(i)
        sent = [
            (self._send(worker, "batch", [pairs[i] for i in indices]), indices)
            for worker, indices in groups.items()
        ]
        return BatchTicket(len(pairs), sent)

    def gather(self, ticket: "BatchTicket") -> list:
        """Answers for a :meth:`submit_batch` ticket, in input order."""
        results: list = [None] * ticket.size
        for req_id, indices in ticket.sent:
            values = self._collect(req_id)
            for i, value in zip(indices, values):
                results[i] = value
        return results

    def query_from(self, s: int, targets) -> list:
        """One-to-many from ``s``, answered by ``s``'s affinity worker."""
        worker = self._route.worker_for(s)
        return self._collect(self._send(worker, "from", s, list(targets)))

    # ------------------------------------------------------------------
    # Introspection and verification
    # ------------------------------------------------------------------

    def stats(self) -> list[dict]:
        """Each worker's ``QueryEngine.stats_snapshot()``, by worker id."""
        return self._broadcast("stats")

    def resident_kb(self) -> list[int]:
        """Each worker's resident set size in KiB (plus see ``_resident_kb``)."""
        return self._broadcast("rss")

    def fingerprints(self) -> list[str]:
        """Each worker's index-fingerprint digest, by worker id."""
        return self._broadcast("fingerprint")

    def verify(self) -> str:
        """Check every worker serves the parent's exact index.

        Returns the common digest; raises :class:`FleetError` naming
        the first divergent worker otherwise.
        """
        expected = _fingerprint_digest(self._index)
        for worker_id, digest in enumerate(self.fingerprints()):
            if digest != expected:
                raise FleetError(
                    f"fleet worker {worker_id} serves a different index "
                    f"(fingerprint {digest[:12]}… != parent {expected[:12]}…)"
                )
        return expected

    @property
    def index(self):
        """The parent's own (routing) index."""
        return self._index

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Gracefully stop every worker (idempotent).

        Each worker gets a shutdown message and acknowledges it before
        the parent joins the process; a worker that fails to
        acknowledge within ``SHUTDOWN_TIMEOUT`` seconds is terminated.
        """
        if self._closed:
            return
        self._closed = True
        acks = []
        for worker in range(self.workers):
            if self._processes[worker].is_alive():
                acks.append(self._send(worker, "shutdown"))
        for req_id in acks:
            try:
                self._collect(req_id, timeout=SHUTDOWN_TIMEOUT)
            except FleetError:
                pass  # escalation below
        for process in self._processes:
            process.join(timeout=SHUTDOWN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=SHUTDOWN_TIMEOUT)
        for queue in (*self._requests, *self._responses):
            queue.close()

    def _kill(self) -> None:
        """Hard-stop every worker (failed start path)."""
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=SHUTDOWN_TIMEOUT)

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------

    def _send(self, worker: int, kind: str, *payload) -> int:
        if self._closed and kind != "shutdown":
            raise FleetError("fleet is shut down")
        req_id = next(self._req_ids)
        self._owner[req_id] = worker
        self._requests[worker].put((kind, req_id, *payload))
        return req_id

    def _collect(self, req_id: int, *, timeout: float | None = None):
        """The payload for ``req_id``, parking out-of-order answers.

        The wait reads the owning worker's response queue — each
        worker has its own, so a sibling's death can never block this
        request's channel.  Never hangs on a dead worker either: the
        wait polls in ``LIVENESS_POLL_SECONDS`` slices and, when the
        queue runs dry, checks that the owner is still alive — a
        worker that died mid-request raises a :class:`FleetError`
        naming it (and its exit code) instead of blocking forever.
        """
        if req_id in self._pending:
            _, status, payload = self._pending.pop(req_id)
            self._owner.pop(req_id, None)
            return self._finish(status, payload)
        deadline = None if timeout is None else time.monotonic() + timeout
        owner = self._owner.get(req_id)
        if owner is None:
            # Never dispatched (or already delivered): there is no
            # queue to wait on, so the explicit timeout is the only
            # legitimate wait.
            if deadline is None:
                raise FleetError(f"unknown fleet request {req_id}")
            while time.monotonic() < deadline:
                time.sleep(LIVENESS_POLL_SECONDS)
                if req_id in self._pending:  # pragma: no cover - race guard
                    _, status, payload = self._pending.pop(req_id)
                    return self._finish(status, payload)
            raise FleetError(f"timed out waiting for fleet response {req_id}")
        while True:
            try:
                worker_id, got_id, status, payload = self._responses[owner].get(
                    timeout=LIVENESS_POLL_SECONDS
                )
            except queue_module.Empty:
                found = self._check_waiter(req_id)
                if found is not _NO_RESPONSE:
                    return found
                if deadline is not None and time.monotonic() >= deadline:
                    self._owner.pop(req_id, None)
                    raise FleetError(
                        f"timed out waiting for fleet response {req_id}"
                    )
                continue
            self._owner.pop(got_id, None)
            if got_id == req_id:
                return self._finish(status, payload)
            self._pending[got_id] = (worker_id, status, payload)

    def _check_waiter(self, req_id: int):
        """Liveness check for a dry response queue.

        Returns the finished payload if the awaited response raced in
        during a final drain; raises :class:`FleetError` when the
        owning worker is dead; returns :data:`_NO_RESPONSE` to keep
        waiting (the payload itself may legitimately be ``None``).
        """
        owner = self._owner.get(req_id)
        if owner is None or self._processes[owner].is_alive():
            return _NO_RESPONSE
        # The worker is dead — drain anything it managed to send before
        # dying (its answer may have raced with the liveness check).
        while True:
            try:
                worker_id, got_id, status, payload = self._responses[owner].get_nowait()
            except queue_module.Empty:
                break
            self._owner.pop(got_id, None)
            if got_id == req_id:
                return self._finish(status, payload)
            self._pending[got_id] = (worker_id, status, payload)
        self._owner.pop(req_id, None)
        exitcode = self._processes[owner].exitcode
        raise FleetError(
            f"fleet worker {owner} died (exit code {exitcode}) with "
            f"request {req_id} outstanding"
        )

    @staticmethod
    def _finish(status: str, payload):
        if status != "ok":
            raise FleetError(f"fleet worker request failed: {payload}")
        return payload

    def _broadcast(self, kind: str) -> list:
        req_ids = [self._send(worker, kind) for worker in range(self.workers)]
        return [self._collect(req_id) for req_id in req_ids]


class _TreeRouter:
    """Source node -> worker id, by tree affinity.

    Forest trees are LPT-assigned to workers weighted by member count
    (one task per worker); core sources — which have no tree — cycle
    round-robin so no single worker absorbs all core traffic.
    """

    __slots__ = (
        "_n",
        "_workers",
        "_representative",
        "_position",
        "_root",
        "_root_to_worker",
        "_rr",
    )

    def __init__(self, index, workers: int) -> None:
        from repro.parallel.chunking import balanced_tasks

        decomposition = index.tree_index.decomposition
        self._n = index.graph.n
        self._workers = workers
        self._representative = index.reduction.representative
        self._position = decomposition.position
        self._root = decomposition.root
        sized = [
            (root, len(members))
            for root, members in sorted(decomposition.tree_members().items())
        ]
        tasks = balanced_tasks(sized, workers, tasks_per_worker=1) if sized else []
        self._root_to_worker = {
            root: task_index % workers
            for task_index, task in enumerate(tasks)
            for root in task
        }
        self._rr = itertools.count()

    def worker_for(self, s: int) -> int:
        if not 0 <= s < self._n:
            # Let the worker's engine raise the library's own range
            # error; routing just needs somewhere deterministic.
            return 0
        representative = self._representative[s]
        position = self._position[representative]
        if position is None:
            return next(self._rr) % self._workers
        return self._root_to_worker[self._root[position]]


__all__ = [
    "BatchTicket",
    "FleetError",
    "ServingFleet",
    "SHUTDOWN_TIMEOUT",
    "START_TIMEOUT",
]
