"""Per-run audit records for the serving front-end.

A serving run should be auditable after the fact: *exactly what did
this process serve, from which index, under which configuration, and
how did it perform?*  Two artifacts answer that, modeled on the
run-audit (``artifact.json``) and eval-history
(``eval_history.jsonl``) patterns from the related-work corpus:

``artifact.json``
    One JSON document per run, written on shutdown — the source of
    truth for run-level detail: snapshot fingerprint, resolved
    configuration, request/rejection counters, batching shape, latency
    histograms (with p50/p99/p999), and whether the drain was clean.

``eval_history.jsonl``
    One appended JSON line per run — the cross-run latency trend log.
    Append-only, so a directory that hosts many runs accumulates a
    comparable history (the shape ``repro server-bench`` reads back).

Both records validate against the checked-in structural schemas in
this module (:data:`ARTIFACT_SCHEMA`, :data:`EVAL_ENTRY_SCHEMA`)
*before* they are written — a malformed audit record is a bug in the
server, not something to discover in a post-mortem.  The validator is
a deliberately small subset of JSON Schema (``type`` / ``required`` /
``properties`` / ``items`` / ``enum``) so the contract stays
dependency-free and readable in one screen.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from pathlib import Path

from repro.serving.errors import AuditError

#: File names inside an audit directory.
ARTIFACT_FILENAME = "artifact.json"
EVAL_HISTORY_FILENAME = "eval_history.jsonl"

#: Schema identifiers embedded in every record.
ARTIFACT_SCHEMA_NAME = "repro.serve.artifact"
EVAL_SCHEMA_NAME = "repro.serve.eval"
SCHEMA_VERSION = 1

#: Latency summary every audited endpoint reports.
_LATENCY_SUMMARY_SCHEMA = {
    "type": "object",
    "required": ["count", "mean_us", "p50_us", "p99_us", "p999_us", "max_us"],
    "properties": {
        "count": {"type": "integer"},
        "mean_us": {"type": "number"},
        "p50_us": {"type": "number"},
        "p99_us": {"type": "number"},
        "p999_us": {"type": "number"},
        "max_us": {"type": "number"},
    },
}

#: The checked-in contract for ``artifact.json`` (version 1).
ARTIFACT_SCHEMA = {
    "type": "object",
    "required": [
        "schema",
        "schema_version",
        "run_id",
        "started_at",
        "finished_at",
        "duration_s",
        "snapshot",
        "config",
        "counters",
        "batching",
        "latency",
        "drain",
    ],
    "properties": {
        "schema": {"enum": [ARTIFACT_SCHEMA_NAME]},
        "schema_version": {"enum": [SCHEMA_VERSION]},
        "run_id": {"type": "string"},
        "started_at": {"type": "string"},
        "finished_at": {"type": "string"},
        "duration_s": {"type": "number"},
        "snapshot": {
            "type": "object",
            "required": ["path", "sha256", "n", "engine"],
            "properties": {
                "path": {"type": ["string", "null"]},
                "sha256": {"type": ["string", "null"]},
                "n": {"type": "integer"},
                "engine": {"type": "string"},
            },
        },
        "config": {
            "type": "object",
            "required": [
                "host",
                "port",
                "batch_window_ms",
                "batch_max_size",
                "max_queue_depth",
                "drain_timeout_s",
            ],
            "properties": {
                "host": {"type": "string"},
                "port": {"type": "integer"},
                "batch_window_ms": {"type": "number"},
                "batch_max_size": {"type": "integer"},
                "max_queue_depth": {"type": "integer"},
                "drain_timeout_s": {"type": "number"},
            },
        },
        "counters": {
            "type": "object",
            "required": [
                "requests",
                "queries_answered",
                "rejected",
                "batches",
                "batched_queries",
                "batch_failures",
            ],
            "properties": {
                "requests": {"type": "object"},
                "queries_answered": {"type": "integer"},
                "rejected": {"type": "object"},
                "batches": {"type": "integer"},
                "batched_queries": {"type": "integer"},
                "batch_failures": {"type": "integer"},
            },
        },
        "batching": {
            "type": "object",
            "required": ["mean_batch_size", "max_batch_size"],
            "properties": {
                "mean_batch_size": {"type": "number"},
                "max_batch_size": {"type": "integer"},
            },
        },
        "latency": {"type": "object", "values": _LATENCY_SUMMARY_SCHEMA},
        "drain": {
            "type": "object",
            "required": ["clean", "inflight_at_close"],
            "properties": {
                "clean": {"type": "boolean"},
                "inflight_at_close": {"type": "integer"},
            },
        },
    },
}

#: The checked-in contract for one ``eval_history.jsonl`` line (version 1).
EVAL_ENTRY_SCHEMA = {
    "type": "object",
    "required": [
        "schema",
        "schema_version",
        "timestamp",
        "run_id",
        "duration_s",
        "requests",
        "queries_answered",
        "rps",
        "p50_us",
        "p99_us",
        "p999_us",
    ],
    "properties": {
        "schema": {"enum": [EVAL_SCHEMA_NAME]},
        "schema_version": {"enum": [SCHEMA_VERSION]},
        "timestamp": {"type": "string"},
        "run_id": {"type": "string"},
        "duration_s": {"type": "number"},
        "requests": {"type": "integer"},
        "queries_answered": {"type": "integer"},
        "rps": {"type": "number"},
        "p50_us": {"type": "number"},
        "p99_us": {"type": "number"},
        "p999_us": {"type": "number"},
    },
}

#: JSON-type name -> Python predicate.  ``bool`` is excluded from the
#: numeric types (it subclasses ``int`` but "true queries" is a bug).
_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_document(value, schema: dict, *, path: str = "$") -> None:
    """Raise :class:`AuditError` where ``value`` violates ``schema``.

    Supports the subset of JSON Schema the audit contracts use:
    ``type`` (name or list of names), ``required`` + ``properties`` for
    objects, ``values`` (one schema applied to every object value),
    ``items`` for arrays, and ``enum``.
    """
    if "enum" in schema:
        if value not in schema["enum"]:
            raise AuditError(
                f"{path}: {value!r} not one of {schema['enum']!r}"
            )
        return
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[name](value) for name in names):
            raise AuditError(
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(value).__name__} ({value!r})"
            )
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise AuditError(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate_document(value[key], sub, path=f"{path}.{key}")
        values_schema = schema.get("values")
        if values_schema is not None:
            for key, item in value.items():
                validate_document(item, values_schema, path=f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate_document(item, schema["items"], path=f"{path}[{index}]")


def validate_artifact(document: dict) -> dict:
    """Validate an ``artifact.json`` document; returns it unchanged."""
    validate_document(document, ARTIFACT_SCHEMA)
    return document


def validate_eval_entry(entry: dict) -> dict:
    """Validate one ``eval_history.jsonl`` record; returns it unchanged."""
    validate_document(entry, EVAL_ENTRY_SCHEMA)
    return entry


def fingerprint_sha256(index) -> str:
    """SHA-256 hex digest of the index's canonical fingerprint.

    The same digest :meth:`~repro.serving.fleet.ServingFleet.verify`
    compares across workers, so an ``artifact.json`` written by a
    single-process server and a fleet's verification speak about the
    same identity.
    """
    from repro.core.serialization import index_fingerprint

    return hashlib.sha256(index_fingerprint(index)).hexdigest()


def utc_timestamp(seconds: float | None = None) -> str:
    """ISO-8601 UTC timestamp (second resolution, ``Z`` suffix)."""
    return time.strftime(
        "%Y-%m-%dT%H:%M:%SZ",
        time.gmtime(seconds if seconds is not None else time.time()),
    )


def latency_summary(histogram) -> dict:
    """The audit-record latency summary of one ``LatencyHistogram``."""
    snapshot = histogram.snapshot()
    if not snapshot["count"]:
        return {
            "count": 0,
            "mean_us": 0.0,
            "p50_us": 0.0,
            "p99_us": 0.0,
            "p999_us": 0.0,
            "max_us": 0.0,
        }
    return {
        "count": snapshot["count"],
        "mean_us": round(snapshot["mean_us"], 3),
        "p50_us": round(snapshot["p50_us"], 3),
        "p99_us": round(snapshot["p99_us"], 3),
        "p999_us": round(histogram.percentile(0.999) * 1e6, 3),
        "max_us": round(snapshot["max_us"], 3),
    }


def write_artifact(document: dict, directory) -> Path:
    """Validate and write ``artifact.json`` under ``directory``.

    The directory is created when missing; the write is
    atomic-by-rename so a crashed writer never leaves a truncated
    record behind.  Returns the artifact path.
    """
    validate_artifact(document)
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / ARTIFACT_FILENAME
        staging = path.with_suffix(".json.tmp")
        staging.write_text(
            json.dumps(document, indent=2, allow_nan=False) + "\n",
            encoding="utf-8",
        )
        staging.replace(path)
    except OSError as exc:
        raise AuditError(f"cannot write {ARTIFACT_FILENAME}: {exc}") from exc
    return path


def append_eval_entry(entry: dict, directory) -> Path:
    """Validate and append one line to ``eval_history.jsonl``.

    Append-only by contract: prior runs' lines are never rewritten, so
    the file is a cross-run latency trend log.  Returns the history
    path.
    """
    validate_eval_entry(entry)
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / EVAL_HISTORY_FILENAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, allow_nan=False) + "\n")
    except OSError as exc:
        raise AuditError(f"cannot append {EVAL_HISTORY_FILENAME}: {exc}") from exc
    return path


def read_eval_history(path) -> list[dict]:
    """Parse an ``eval_history.jsonl`` file, validating every line."""
    entries: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise AuditError(
                        f"{path}:{number}: not valid JSON: {exc}"
                    ) from exc
                validate_document(
                    entry, EVAL_ENTRY_SCHEMA, path=f"{path}:{number}"
                )
                entries.append(entry)
    except OSError as exc:
        raise AuditError(f"cannot read eval history {path}: {exc}") from exc
    return entries


def encode_weight(value):
    """JSON-safe distance: ``math.inf`` becomes the ``"inf"`` sentinel.

    The same convention the index serializer uses (RFC 8259 has no
    infinity), so wire payloads and saved indexes agree.
    """
    return "inf" if value == math.inf else value


def decode_weight(value):
    """Inverse of :func:`encode_weight`."""
    return math.inf if value == "inf" else value


__all__ = [
    "ARTIFACT_FILENAME",
    "ARTIFACT_SCHEMA",
    "ARTIFACT_SCHEMA_NAME",
    "EVAL_ENTRY_SCHEMA",
    "EVAL_HISTORY_FILENAME",
    "EVAL_SCHEMA_NAME",
    "SCHEMA_VERSION",
    "append_eval_entry",
    "decode_weight",
    "encode_weight",
    "fingerprint_sha256",
    "latency_summary",
    "read_eval_history",
    "utc_timestamp",
    "validate_artifact",
    "validate_document",
    "validate_eval_entry",
    "write_artifact",
]
