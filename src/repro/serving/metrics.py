"""Compatibility shim: the serving histogram now lives in :mod:`repro.obs`.

:class:`~repro.obs.metrics.LatencyHistogram` (and its bucket layout)
was promoted into the process-wide observability package so every layer
— serving, construction, storage — shares one metric vocabulary and one
registry.  This module keeps the original import path working::

    from repro.serving.metrics import LatencyHistogram   # still fine

New code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.metrics import BUCKET_EDGES, Counter, Gauge, LatencyHistogram

__all__ = ["BUCKET_EDGES", "Counter", "Gauge", "LatencyHistogram"]
