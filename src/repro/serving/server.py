"""Asyncio HTTP front-end over a :class:`~repro.serving.QueryEngine`.

``repro serve`` turns a saved index into a network service.  The
design goal is the one PR 5/6 made cheap: **batched queries are the
fast path**, so the server's job is to turn a storm of independent
single-pair requests into a steady stream of ``query_batch`` calls
without losing per-request isolation.

Request flow::

    connection -> HTTP/1.1 parse -> route
        POST /query        -> admission check -> micro-batch queue
        POST /query/batch  -> admission check -> direct query_batch
        POST /query/from   -> admission check -> direct query_from
        POST /mutate       -> admission check -> engine.apply_mutations
        POST /reindex      -> rebuild-verify-swap (needs a reindexer)
        GET  /reindex      -> reindexer status
        GET  /healthz      -> state + depth (503 while draining)
        GET  /metrics      -> Prometheus text of the obs registry
        GET  /stats        -> engine + server counters as JSON

**Dynamic serving.**  When the engine fronts a
:class:`~repro.dynamic.DeltaOverlayIndex`, ``POST /mutate`` streams
edge insertions/deletions into it — mutations run on the same single
engine worker thread as query batches, so they serialize with in-flight
work and every admitted query is answered exactly for the graph state
it executes against.  A :class:`~repro.dynamic.BackgroundReindexer`
(the ``reindexer=`` parameter) adds ``/reindex``: the rebuild runs off
the engine thread, is fingerprint- and ground-truth-verified, and the
hot swap is answer-preserving — the serve-under-churn suite pins down
that zero wrong or dropped answers are observable across a swap.

The pieces, and the contracts the tests pin down:

**Micro-batching** (:class:`_MicroBatcher`).  A single-pair request
parks a future in a bounded queue.  A collector task flushes the queue
into one ``query_batch`` call when either ``batch_max_size`` requests
are waiting or ``batch_window_ms`` has elapsed since the first —
whichever comes first.  Batches execute on a dedicated single worker
thread, so the event loop keeps accepting traffic while the engine
(GIL-bound or fleet-IPC-bound) works, and engine calls never
interleave.

**Backpressure.**  Admission control is a hard bound on *pending*
queries (queued + executing).  A request that would exceed
``max_queue_depth`` is refused immediately with HTTP 429
``{"error": "overloaded"}`` — the server sheds load at the door
instead of queueing unboundedly.  Batch/one-to-many requests count
each contained query against the same bound.

**Failure isolation.**  A ``query_batch`` call that raises fails only
the requests in that batch (HTTP 500, counted in
``serving.server.batch_failures``); the collector keeps serving the
next batch.  Malformed requests (bad JSON, wrong shapes, out-of-range
vertices) are rejected with structured HTTP 400 errors before they
reach the engine, so one bad client cannot poison a batch.

**Graceful drain.**  ``close()`` (and SIGTERM/SIGINT under
:func:`serve_forever`) moves the server to ``draining``: the listener
closes, new query requests get HTTP 503 ``{"error": "draining"}``,
already-admitted requests run to completion (bounded by
``drain_timeout_s``), and only then does the run's audit record go to
disk — ``artifact.json`` plus an ``eval_history.jsonl`` line (see
:mod:`repro.serving.audit`).  Zero admitted requests are dropped in a
clean drain.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
import uuid
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigurationError, GraphError
from repro.obs.metrics import LatencyHistogram
from repro.obs.registry import MetricsRegistry, registry as default_registry
import repro.serving.audit as audit
from repro.serving.errors import ServingError

#: Server lifecycle states, in order.
STATE_IDLE = "idle"
STATE_SERVING = "serving"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"

#: Registry metric names the server records under (all labeled
#: ``server=<id>``; request metrics additionally ``endpoint=``).
REQUEST_LATENCY_METRIC = "serving.server.request_latency"
REQUESTS_METRIC = "serving.server.requests"
REJECTED_METRIC = "serving.server.rejected"
BATCHES_METRIC = "serving.server.batches"
BATCH_FAILURES_METRIC = "serving.server.batch_failures"
QUEUE_DEPTH_METRIC = "serving.server.queue_depth"

#: Rejection reasons (the ``rejected`` counter keys / error codes).
REASON_OVERLOADED = "overloaded"
REASON_DRAINING = "draining"
REASON_BAD_REQUEST = "bad_request"

#: HTTP status text for the codes the server emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard cap on request bodies (a million-pair batch is a config error).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: StreamReader buffer limit (headers + readuntil).
_READER_LIMIT = 1 << 20

#: Distinguishes servers sharing one metrics registry.
_SERVER_IDS = itertools.count()


@dataclass
class ServerConfig:
    """Knobs of one :class:`DistanceServer`.

    ``port=0`` binds an ephemeral port (the bound port is available as
    ``server.port`` after ``start()``).  ``batch_window_ms`` is the
    micro-batch time window measured from the first queued request;
    ``batch_max_size`` flushes a batch early when enough requests are
    waiting.  ``max_queue_depth`` bounds *pending* queries (queued +
    executing) — the backpressure threshold.  ``audit_dir`` is where
    ``artifact.json`` / ``eval_history.jsonl`` land on shutdown
    (``None`` disables the audit record).
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_ms: float = 2.0
    batch_max_size: int = 64
    max_queue_depth: int = 1024
    drain_timeout_s: float = 10.0
    audit_dir: str | None = None

    def __post_init__(self) -> None:
        if self.batch_max_size < 1:
            raise ConfigurationError(
                f"batch_max_size must be >= 1, got {self.batch_max_size}"
            )
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )

    def as_dict(self) -> dict:
        """Audit-record view of the resolved configuration."""
        return {
            "host": self.host,
            "port": self.port,
            "batch_window_ms": float(self.batch_window_ms),
            "batch_max_size": self.batch_max_size,
            "max_queue_depth": self.max_queue_depth,
            "drain_timeout_s": float(self.drain_timeout_s),
        }


class _Refused(Exception):
    """Admission control said no (maps to 429/503)."""

    def __init__(self, reason: str, status: int, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.status = status
        self.detail = detail


class _BadRequest(Exception):
    """Structured 400: the request never reaches the engine."""

    def __init__(self, detail: str) -> None:
        super().__init__(detail)
        self.detail = detail


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: dict = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True


class _MicroBatcher:
    """Time/size-window aggregation of single-pair requests.

    Each submitted pair gets a future that resolves to ``("ok",
    value)`` or ``("error", detail)`` — batch failures are delivered as
    values, not exceptions, so an abandoned request (client gone) never
    leaves an unretrieved-exception warning behind.
    """

    def __init__(self, server: "DistanceServer") -> None:
        self._server = server
        self._queue: deque = deque()
        self._wake = asyncio.Event()
        self._inflight: set[asyncio.Task] = set()
        self._task: asyncio.Task | None = None
        self._stopping = False
        #: Queued + executing queries (the backpressure quantity, also
        #: counting direct batch/one-to-many admissions).
        self.pending = 0

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._collect_loop())

    def submit(self, s: int, t: int) -> asyncio.Future:
        """Admit one pair, or raise :class:`_Refused`."""
        self._server._check_admission(1)
        future = asyncio.get_running_loop().create_future()
        self._queue.append((s, t, future))
        self.pending += 1
        self._server._queue_gauge.set(self.pending)
        self._wake.set()
        return future

    def reserve(self, count: int) -> None:
        """Count a direct batch's queries against the admission bound."""
        self._server._check_admission(count)
        self.pending += count
        self._server._queue_gauge.set(self.pending)

    def release(self, count: int) -> None:
        self.pending -= count
        self._server._queue_gauge.set(self.pending)

    async def _collect_loop(self) -> None:
        window = self._server.config.batch_window_ms / 1e3
        max_size = self._server.config.batch_max_size
        while True:
            if not self._queue:
                if self._stopping:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            # Let a batch accumulate: flush early when full, on the
            # window otherwise.  A draining server flushes immediately.
            if window > 0 and len(self._queue) < max_size and not self._stopping:
                await asyncio.sleep(window)
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), max_size))
            ]
            task = asyncio.get_running_loop().create_task(self._execute(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _execute(self, batch: list) -> None:
        server = self._server
        pairs = [(s, t) for s, t, _ in batch]
        try:
            values = await server._run_in_engine(server.engine.query_batch, pairs)
        except Exception as exc:  # noqa: BLE001 - isolated to this batch
            server.batch_failures += 1
            server._failures_counter.inc()
            detail = f"{type(exc).__name__}: {exc}"
            for _, _, future in batch:
                if not future.done():
                    future.set_result(("error", detail))
        else:
            server.batches += 1
            server.batched_queries += len(batch)
            server.max_batch_size = max(server.max_batch_size, len(batch))
            server._batches_counter.inc()
            for (_, _, future), value in zip(batch, values):
                if not future.done():
                    future.set_result(("ok", value))
        finally:
            self.release(len(batch))

    async def drain(self) -> None:
        """Flush the queue and wait for every in-flight batch."""
        self._stopping = True
        self._wake.set()
        if self._task is not None:
            await self._task
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)


class DistanceServer:
    """The asyncio serving front-end.

    Parameters
    ----------
    engine:
        Anything answering the :class:`~repro.serving.QueryEngine`
        batch protocol (``query_batch(pairs)`` and
        ``query_from(s, targets)``) — a ``QueryEngine`` or a
        :class:`~repro.serving.ServingFleet`.  Calls run on one
        dedicated worker thread, never concurrently.
    n:
        Vertex-id bound; out-of-range ids are rejected with HTTP 400
        *before* batching, so one bad id cannot fail a shared batch.
    config:
        A :class:`ServerConfig` (defaults throughout when ``None``).
    snapshot_path / fingerprint:
        Recorded in ``/healthz`` and the audit record; ``fingerprint``
        is the SHA-256 snapshot digest
        (:func:`repro.serving.audit.fingerprint_sha256`).
    registry:
        Metrics registry for counters/histograms (process-wide default
        — which is also what ``GET /metrics`` renders).
    reindexer:
        Optional :class:`~repro.dynamic.BackgroundReindexer` over the
        engine's overlay; enables the ``/reindex`` routes and, after
        every ``/mutate``, an auto-threshold check.
    """

    def __init__(
        self,
        engine,
        n: int,
        config: ServerConfig | None = None,
        *,
        snapshot_path=None,
        fingerprint: str | None = None,
        registry: MetricsRegistry | None = None,
        reindexer=None,
    ) -> None:
        for required in ("query_batch", "query_from"):
            if not callable(getattr(engine, required, None)):
                raise ConfigurationError(
                    f"server engine {type(engine).__name__} has no "
                    f"{required}() — wrap the index in a QueryEngine"
                )
        self.engine = engine
        self.n = n
        self.config = config if config is not None else ServerConfig()
        self.snapshot_path = str(snapshot_path) if snapshot_path else None
        self.fingerprint = fingerprint
        self.reindexer = reindexer
        self.mutations_applied = 0
        self.metrics_registry = (
            registry if registry is not None else default_registry()
        )
        self.server_id = next(_SERVER_IDS)
        self.run_id = uuid.uuid4().hex
        self.state = STATE_IDLE
        self.port: int | None = None

        # Authoritative plain counters (the audit record reads these);
        # registry metrics mirror them for /metrics scrapes.
        self.request_counts: Counter[str] = Counter()
        self.rejected_counts: Counter[str] = Counter()
        self.queries_answered = 0
        self.batches = 0
        self.batched_queries = 0
        self.max_batch_size = 0
        self.batch_failures = 0

        self._latency: dict[str, LatencyHistogram] = {}
        self._batches_counter = self.metrics_registry.counter(
            BATCHES_METRIC, server=self.server_id
        )
        self._failures_counter = self.metrics_registry.counter(
            BATCH_FAILURES_METRIC, server=self.server_id
        )
        self._queue_gauge = self.metrics_registry.gauge(
            QUEUE_DEPTH_METRIC, server=self.server_id
        )

        self._batcher = _MicroBatcher(self)
        self._executor: ThreadPoolExecutor | None = None
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._inflight_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._started_wall = 0.0
        self._started_mono = 0.0
        self._drain_report: dict | None = None
        self.artifact_path: Path | None = None
        self.eval_history_path: Path | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "DistanceServer":
        """Bind the listener and start the micro-batch collector."""
        if self.state != STATE_IDLE:
            raise ServingError(f"cannot start a server in state {self.state!r}")
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-{self.server_id}"
        )
        self._batcher.start()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=_READER_LIMIT,
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self.state = STATE_SERVING
        return self

    async def close(self) -> dict:
        """Graceful drain, audit write, teardown.  Idempotent.

        Returns the drain report: ``{"clean": bool,
        "inflight_at_close": int}``.  ``clean`` is ``False`` only when
        admitted work failed to finish within ``drain_timeout_s``.
        """
        if self.state in (STATE_DRAINING, STATE_STOPPED):
            return self._drain_report or {"clean": True, "inflight_at_close": 0}
        inflight_at_close = self._inflight_requests + self._batcher.pending
        self.state = STATE_DRAINING
        if self._asyncio_server is not None:
            self._asyncio_server.close()
        clean = True
        try:
            await asyncio.wait_for(
                self._batcher.drain(), timeout=self.config.drain_timeout_s
            )
            if self._inflight_requests:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.config.drain_timeout_s
                )
        except asyncio.TimeoutError:
            clean = False
        self._drain_report = {
            "clean": clean,
            "inflight_at_close": inflight_at_close,
        }
        finished_wall = time.time()
        if self.config.audit_dir is not None:
            document = self.build_artifact(finished_at=finished_wall)
            self.artifact_path = audit.write_artifact(
                document, self.config.audit_dir
            )
            self.eval_history_path = audit.append_eval_entry(
                self.build_eval_entry(finished_at=finished_wall),
                self.config.audit_dir,
            )
        for writer in list(self._connections):
            writer.close()
        if self.reindexer is not None:
            # Stop the rebuild thread off the event loop; a mid-build
            # cycle finishes (its swap is answer-neutral) before join.
            await asyncio.get_running_loop().run_in_executor(
                None, self.reindexer.stop
            )
        if self._asyncio_server is not None:
            await self._asyncio_server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self.state = STATE_STOPPED
        return self._drain_report

    async def __aenter__(self) -> "DistanceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` once started."""
        if self.port is None:
            raise ServingError("server is not started")
        return (self.config.host, self.port)

    # ------------------------------------------------------------------
    # Admission + engine execution
    # ------------------------------------------------------------------

    def _check_admission(self, count: int) -> None:
        if self.state != STATE_SERVING:
            raise _Refused(
                REASON_DRAINING, 503, "server is draining; request refused"
            )
        if self._batcher.pending + count > self.config.max_queue_depth:
            raise _Refused(
                REASON_OVERLOADED,
                429,
                f"admission queue full "
                f"({self._batcher.pending}/{self.config.max_queue_depth} pending)",
            )

    async def _run_in_engine(self, fn, *args):
        """Run one engine call on the dedicated worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    def _check_vertex(self, value, name: str):
        if isinstance(value, bool) or not isinstance(value, int):
            raise _BadRequest(f"{name!r} must be an integer vertex id")
        if not 0 <= value < self.n:
            raise _BadRequest(
                f"{name}={value} out of range for a graph with n={self.n}"
            )
        return value

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    self._count_rejection(REASON_BAD_REQUEST)
                    await self._write_response(
                        writer,
                        400,
                        {"error": REASON_BAD_REQUEST, "detail": exc.detail},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                self._inflight_requests += 1
                self._idle.clear()
                try:
                    status, payload, content_type = await self._dispatch(request)
                    await self._write_response(
                        writer,
                        status,
                        payload,
                        content_type=content_type,
                        keep_alive=request.keep_alive,
                    )
                finally:
                    self._inflight_requests -= 1
                    if not self._inflight_requests:
                        self._idle.set()
                if not request.keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _HttpRequest | None:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        try:
            blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadRequest("truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest("request head too large") from exc
        head = blob.decode("latin-1").split("\r\n")
        parts = head[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {head[0]!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in head[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and (
            version != "HTTP/1.0" or connection == "keep-alive"
        )
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise _BadRequest("non-numeric Content-Length") from exc
            if length < 0:
                raise _BadRequest("negative Content-Length")
            if length > MAX_BODY_BYTES:
                raise _BadRequest(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte cap"
                )
            body = await reader.readexactly(length)
        return _HttpRequest(
            method=method,
            path=target.split("?", 1)[0],
            headers=headers,
            body=body,
            keep_alive=keep_alive,
        )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        *,
        content_type: str = "application/json",
        keep_alive: bool = True,
    ) -> None:
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload, allow_nan=False).encode("utf-8")
        else:
            body = str(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(self, request: _HttpRequest):
        """Route one request; returns ``(status, payload, content_type)``."""
        route = (request.method, request.path)
        endpoint = {
            ("POST", "/query"): "query",
            ("POST", "/query/batch"): "query_batch",
            ("POST", "/query/from"): "query_from",
            ("POST", "/mutate"): "mutate",
            ("POST", "/reindex"): "reindex",
            ("GET", "/reindex"): "reindex_status",
            ("GET", "/healthz"): "healthz",
            ("GET", "/metrics"): "metrics",
            ("GET", "/stats"): "stats",
        }.get(route)
        if endpoint is None:
            known_paths = {"/query", "/query/batch", "/query/from",
                           "/mutate", "/reindex",
                           "/healthz", "/metrics", "/stats"}
            if request.path in known_paths:
                return (
                    405,
                    {"error": "method_not_allowed", "detail":
                     f"{request.method} not supported on {request.path}"},
                    "application/json",
                )
            return (
                404,
                {"error": "not_found", "detail": f"no route {request.path}"},
                "application/json",
            )
        started = time.perf_counter()
        self.request_counts[endpoint] += 1
        self.metrics_registry.counter(
            REQUESTS_METRIC, server=self.server_id, endpoint=endpoint
        ).inc()
        try:
            if endpoint == "healthz":
                result = self._handle_healthz()
            elif endpoint == "metrics":
                result = (200, self.metrics_registry.render_prometheus(),
                          "text/plain; version=0.0.4")
            elif endpoint == "stats":
                result = (200, self.stats_snapshot(), "application/json")
            elif endpoint == "mutate":
                result = await self._handle_mutate(request.body)
            elif endpoint == "reindex":
                result = await self._handle_reindex(request.body)
            elif endpoint == "reindex_status":
                result = self._handle_reindex_status()
            else:
                result = await self._handle_query(endpoint, request.body)
        except _BadRequest as exc:
            self._count_rejection(REASON_BAD_REQUEST)
            result = (
                400,
                {"error": REASON_BAD_REQUEST, "detail": exc.detail},
                "application/json",
            )
        except _Refused as exc:
            self._count_rejection(exc.reason)
            result = (
                exc.status,
                {"error": exc.reason, "detail": exc.detail},
                "application/json",
            )
        except Exception as exc:  # noqa: BLE001 - a request never kills the server
            result = (
                500,
                {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"},
                "application/json",
            )
        histogram = self._latency.get(endpoint)
        if histogram is None:
            histogram = self._latency[endpoint] = self.metrics_registry.histogram(
                REQUEST_LATENCY_METRIC, server=self.server_id, endpoint=endpoint
            )
        histogram.record(time.perf_counter() - started)
        return result

    def _count_rejection(self, reason: str) -> None:
        self.rejected_counts[reason] += 1
        self.metrics_registry.counter(
            REJECTED_METRIC, server=self.server_id, reason=reason
        ).inc()

    def _handle_healthz(self):
        healthy = self.state == STATE_SERVING
        payload = {
            "status": "ok" if healthy else self.state,
            "state": self.state,
            "run_id": self.run_id,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "queue_depth": self._batcher.pending,
            "max_queue_depth": self.config.max_queue_depth,
            "n": self.n,
            "snapshot_sha256": self.fingerprint,
        }
        mutable = getattr(self.engine, "mutable_index", None)
        if mutable is not None:
            payload["dynamic"] = {
                "mutation_epoch": mutable.mutation_epoch,
                "patch_size": mutable.patch_size,
                "swap_count": mutable.swap_count,
            }
        return (200 if healthy else 503, payload, "application/json")

    async def _handle_query(self, endpoint: str, body: bytes):
        document = self._parse_json_object(body)
        if endpoint == "query":
            s = self._check_vertex(document.get("s"), "s")
            t = self._check_vertex(document.get("t"), "t")
            future = self._batcher.submit(s, t)
            status, value = await future
            if status != "ok":
                return (
                    500,
                    {"error": "internal", "detail": value},
                    "application/json",
                )
            self.queries_answered += 1
            return (
                200,
                {"distance": audit.encode_weight(value)},
                "application/json",
            )
        if endpoint == "query_batch":
            pairs_field = document.get("pairs")
            if not isinstance(pairs_field, list):
                raise _BadRequest("'pairs' must be a list of [s, t] pairs")
            pairs = []
            for index, pair in enumerate(pairs_field):
                if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                    raise _BadRequest(
                        f"pairs[{index}] is not a two-element [s, t] pair"
                    )
                pairs.append(
                    (
                        self._check_vertex(pair[0], f"pairs[{index}][0]"),
                        self._check_vertex(pair[1], f"pairs[{index}][1]"),
                    )
                )
            return await self._direct(
                len(pairs), self.engine.query_batch, pairs
            )
        # query_from
        s = self._check_vertex(document.get("s"), "s")
        targets_field = document.get("targets")
        if not isinstance(targets_field, list):
            raise _BadRequest("'targets' must be a list of vertex ids")
        targets = [
            self._check_vertex(t, f"targets[{index}]")
            for index, t in enumerate(targets_field)
        ]
        return await self._direct(
            len(targets), self.engine.query_from, s, targets
        )

    async def _direct(self, count: int, fn, *args):
        """Admit + run a direct (non-micro-batched) engine call."""
        self._batcher.reserve(count)
        try:
            values = await self._run_in_engine(fn, *args)
        except Exception as exc:  # noqa: BLE001 - isolated to this request
            self.batch_failures += 1
            self._failures_counter.inc()
            return (
                500,
                {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"},
                "application/json",
            )
        finally:
            self._batcher.release(count)
        self.queries_answered += len(values)
        return (
            200,
            {
                "distances": [audit.encode_weight(v) for v in values],
                "count": len(values),
            },
            "application/json",
        )

    # ------------------------------------------------------------------
    # Dynamic-graph endpoints
    # ------------------------------------------------------------------

    async def _handle_mutate(self, body: bytes):
        """``POST /mutate``: stream edge mutations into the overlay.

        Body shape: ``{"ops": [{"op": "add", "u": 1, "v": 2, "w": 1},
        {"op": "remove", "u": 3, "v": 4}, ...]}``.  Mutations execute on
        the engine worker thread, serialized with query batches.  A
        data-dependent failure mid-stream (removing an absent edge)
        returns 400 with the prefix ops already applied — the response
        says so, and every applied op is still answered exactly.
        """
        document = self._parse_json_object(body)
        ops_field = document.get("ops")
        if not isinstance(ops_field, list):
            raise _BadRequest("'ops' must be a list of mutation objects")
        ops = []
        for index, item in enumerate(ops_field):
            if not isinstance(item, dict):
                raise _BadRequest(f"ops[{index}] is not a mutation object")
            kind = item.get("op")
            if kind not in ("add", "remove"):
                raise _BadRequest(
                    f"ops[{index}].op must be 'add' or 'remove', "
                    f"got {item.get('op')!r}"
                )
            u = self._check_vertex(item.get("u"), f"ops[{index}].u")
            v = self._check_vertex(item.get("v"), f"ops[{index}].v")
            weight = None
            if kind == "add":
                weight = item.get("w", 1)
                if isinstance(weight, bool) or not isinstance(
                    weight, (int, float)
                ):
                    raise _BadRequest(f"ops[{index}].w must be a number")
            ops.append((kind, u, v, weight))
        apply_mutations = getattr(self.engine, "apply_mutations", None)
        if apply_mutations is None:
            raise _BadRequest(
                f"engine {type(self.engine).__name__} does not accept "
                f"mutations"
            )
        self._batcher.reserve(len(ops))
        try:
            applied = await self._run_in_engine(apply_mutations, ops)
        except (GraphError, ConfigurationError) as exc:
            raise _BadRequest(
                f"mutation stream rejected (a prefix may already be "
                f"applied): {exc}"
            ) from exc
        finally:
            self._batcher.release(len(ops))
        self.mutations_applied += applied
        payload = {"applied": applied, "requested": len(ops)}
        mutable = getattr(self.engine, "mutable_index", None)
        if mutable is not None:
            payload["mutation_epoch"] = mutable.mutation_epoch
            payload["patch_size"] = mutable.patch_size
        if self.reindexer is not None:
            payload["reindex_triggered"] = self.reindexer.maybe_trigger()
        return (200, payload, "application/json")

    async def _handle_reindex(self, body: bytes):
        """``POST /reindex``: rebuild-verify-swap, sync or async.

        With ``{"wait": true}`` the cycle runs to completion on the
        default executor (off the engine thread — queries keep flowing)
        and returns its result; otherwise the background reindexer
        thread is nudged and the call returns immediately.
        """
        reindexer = self._require_reindexer()
        document = self._parse_json_object(body) if body else {}
        wait = document.get("wait", False)
        if not isinstance(wait, bool):
            raise _BadRequest("'wait' must be a boolean")
        force = document.get("force", False)
        if not isinstance(force, bool):
            raise _BadRequest("'force' must be a boolean")
        if wait:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                None, lambda: reindexer.rebuild_once(force=force)
            )
            return (200, {"result": result.summary()}, "application/json")
        reindexer.request_rebuild()
        return (
            200,
            {"requested": True, "status": reindexer.status()},
            "application/json",
        )

    def _handle_reindex_status(self):
        """``GET /reindex``: the reindexer's status document."""
        return (200, self._require_reindexer().status(), "application/json")

    def _require_reindexer(self):
        if self.reindexer is None:
            raise _BadRequest(
                "server has no background reindexer (start with --dynamic)"
            )
        return self.reindexer

    @staticmethod
    def _parse_json_object(body: bytes) -> dict:
        if not body:
            raise _BadRequest("empty request body (expected a JSON object)")
        try:
            document = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise _BadRequest("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    # Introspection + audit
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Server counters plus the engine's own snapshot (when it has one)."""
        snapshot = {
            "run_id": self.run_id,
            "state": self.state,
            "requests": dict(self.request_counts),
            "rejected": dict(self.rejected_counts),
            "queries_answered": self.queries_answered,
            "queue_depth": self._batcher.pending,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "batch_failures": self.batch_failures,
            "latency": {
                endpoint: histogram.snapshot()
                for endpoint, histogram in self._latency.items()
                if histogram.count
            },
        }
        if self.mutations_applied:
            snapshot["mutations_applied"] = self.mutations_applied
        if self.reindexer is not None:
            snapshot["reindex"] = self.reindexer.status()
        engine_stats = getattr(self.engine, "stats_snapshot", None)
        if callable(engine_stats):
            snapshot["engine"] = engine_stats()
        return snapshot

    def _query_latency(self) -> LatencyHistogram:
        """All query endpoints' latency folded into one histogram."""
        merged = LatencyHistogram()
        for endpoint in ("query", "query_batch", "query_from"):
            histogram = self._latency.get(endpoint)
            if histogram is not None:
                merged.merge(histogram)
        return merged

    def build_artifact(self, *, finished_at: float | None = None) -> dict:
        """The run's ``artifact.json`` document (schema-valid by contract)."""
        finished = finished_at if finished_at is not None else time.time()
        drain = self._drain_report or {
            "clean": False,
            "inflight_at_close": self._inflight_requests + self._batcher.pending,
        }
        return audit.validate_artifact(
            {
                "schema": audit.ARTIFACT_SCHEMA_NAME,
                "schema_version": audit.SCHEMA_VERSION,
                "run_id": self.run_id,
                "started_at": audit.utc_timestamp(self._started_wall),
                "finished_at": audit.utc_timestamp(finished),
                "duration_s": round(max(finished - self._started_wall, 0.0), 3),
                "snapshot": {
                    "path": self.snapshot_path,
                    "sha256": self.fingerprint,
                    "n": self.n,
                    "engine": type(self.engine).__name__,
                },
                "config": self.config.as_dict() | {"port": self.port or 0},
                "counters": {
                    "requests": dict(self.request_counts),
                    "queries_answered": self.queries_answered,
                    "rejected": dict(self.rejected_counts),
                    "batches": self.batches,
                    "batched_queries": self.batched_queries,
                    "batch_failures": self.batch_failures,
                },
                "batching": {
                    "mean_batch_size": round(
                        self.batched_queries / self.batches, 3
                    )
                    if self.batches
                    else 0.0,
                    "max_batch_size": self.max_batch_size,
                },
                "latency": {
                    endpoint: audit.latency_summary(histogram)
                    for endpoint, histogram in sorted(self._latency.items())
                },
                "drain": drain,
            }
        )

    def build_eval_entry(self, *, finished_at: float | None = None) -> dict:
        """The run's ``eval_history.jsonl`` line (schema-valid by contract)."""
        finished = finished_at if finished_at is not None else time.time()
        duration = max(finished - self._started_wall, 1e-9)
        summary = audit.latency_summary(self._query_latency())
        return audit.validate_eval_entry(
            {
                "schema": audit.EVAL_SCHEMA_NAME,
                "schema_version": audit.SCHEMA_VERSION,
                "timestamp": audit.utc_timestamp(finished),
                "run_id": self.run_id,
                "duration_s": round(duration, 3),
                "requests": sum(self.request_counts.values()),
                "queries_answered": self.queries_answered,
                "rps": round(self.queries_answered / duration, 3),
                "p50_us": summary["p50_us"],
                "p99_us": summary["p99_us"],
                "p999_us": summary["p999_us"],
            }
        )


async def serve_forever(
    server: DistanceServer,
    *,
    install_signals: bool = True,
    ready=None,
    stop_event: asyncio.Event | None = None,
) -> dict:
    """Run ``server`` until SIGTERM/SIGINT, then drain gracefully.

    ``ready`` (when given) is called with the started server — the CLI
    uses it to print the bound address.  ``stop_event`` lets callers
    (and tests) request the same graceful shutdown a signal would.
    Returns the drain report from :meth:`DistanceServer.close`.
    """
    import signal

    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list = []
    await server.start()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                continue  # platform without loop signal support
            installed.append(signum)
    if ready is not None:
        ready(server)
    try:
        await stop.wait()
        # Handlers stay installed through the drain: a repeated SIGTERM
        # while close() is writing the audit record must stay a no-op
        # (stop is already set), not revert to the default disposition
        # and kill the process mid-write.
        report = await server.close()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
    return report


__all__ = [
    "BATCHES_METRIC",
    "BATCH_FAILURES_METRIC",
    "DistanceServer",
    "MAX_BODY_BYTES",
    "QUEUE_DEPTH_METRIC",
    "REASON_BAD_REQUEST",
    "REASON_DRAINING",
    "REASON_OVERLOADED",
    "REJECTED_METRIC",
    "REQUESTS_METRIC",
    "REQUEST_LATENCY_METRIC",
    "STATE_DRAINING",
    "STATE_IDLE",
    "STATE_SERVING",
    "STATE_STOPPED",
    "ServerConfig",
    "serve_forever",
]
