"""Serving-layer exception hierarchy.

Everything the serving tier raises — a dead fleet worker, a refused
admission, a malformed audit record — derives from
:class:`ServingError`, which itself derives from
:class:`~repro.exceptions.ReproError`, so callers can shield
themselves from the whole serving stack with one ``except`` clause
(or from the whole library with ``except ReproError``).
"""

from __future__ import annotations

from repro.exceptions import ReproError


class ServingError(ReproError):
    """Base class for every error raised by the serving tier."""


class AuditError(ServingError):
    """An audit record failed schema validation or could not be written."""


__all__ = ["AuditError", "ServingError"]
