"""One-release deprecation shims for renamed keyword arguments.

PR 4 unified the construction kwargs across ``build_pll`` /
``build_psl`` / ``build_core_index`` / ``CTIndex.build`` (``order=``,
``workers=``, ``backend=`` spelled and defaulted identically).  The old
spellings keep working for one release through
:func:`resolve_renamed_kwarg`, which warns with
:class:`DeprecationWarning` and maps the value through.
"""

from __future__ import annotations

import warnings

from repro.exceptions import ConfigurationError


def resolve_renamed_kwarg(
    old_name: str,
    new_name: str,
    old_value,
    new_value,
    *,
    stacklevel: int = 3,
):
    """Resolve a renamed keyword argument pair to one value.

    ``old_value``/``new_value`` are the values as passed (``None`` =
    not passed).  Passing the old spelling warns; passing both raises
    :class:`~repro.exceptions.ConfigurationError` unless they agree.
    Returns the effective value (``None`` when neither was passed, so
    the caller applies its default).
    """
    if old_value is None:
        return new_value
    warnings.warn(
        f"{old_name}= is deprecated; use {new_name}=",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if new_value is not None and new_value != old_value:
        raise ConfigurationError(
            f"conflicting values for {new_name}={new_value!r} and its "
            f"deprecated alias {old_name}={old_value!r}"
        )
    return old_value


__all__ = ["resolve_renamed_kwarg"]
