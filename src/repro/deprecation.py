"""Shims that keep old spellings working across API redesigns.

PR 4 unified the construction kwargs across ``build_pll`` /
``build_psl`` / ``build_core_index`` / ``CTIndex.build`` (``order=``,
``workers=``, ``backend=`` spelled and defaulted identically).  The old
spellings keep working for one release through
:func:`resolve_renamed_kwarg`, which warns with
:class:`DeprecationWarning` and maps the value through.

PR 9 added :class:`~repro.api.BuildConfig` as the preferred spelling of
the build knobs; :func:`resolve_config_kwargs` merges a config with the
still-supported loose kwargs, rejecting conflicting spellings with
:class:`~repro.exceptions.ConfigurationError`.
"""

from __future__ import annotations

import warnings

from repro.exceptions import ConfigurationError


def resolve_renamed_kwarg(
    old_name: str,
    new_name: str,
    old_value,
    new_value,
    *,
    stacklevel: int = 3,
):
    """Resolve a renamed keyword argument pair to one value.

    ``old_value``/``new_value`` are the values as passed (``None`` =
    not passed).  Passing the old spelling warns; passing both raises
    :class:`~repro.exceptions.ConfigurationError` unless they agree.
    Returns the effective value (``None`` when neither was passed, so
    the caller applies its default).
    """
    if old_value is None:
        return new_value
    warnings.warn(
        f"{old_name}= is deprecated; use {new_name}=",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if new_value is not None and new_value != old_value:
        raise ConfigurationError(
            f"conflicting values for {new_name}={new_value!r} and its "
            f"deprecated alias {old_name}={old_value!r}"
        )
    return old_value


def resolve_config_kwargs(config, explicit: dict, *, config_cls=None):
    """Merge a ``BuildConfig`` with explicitly passed loose kwargs.

    ``explicit`` holds only the kwargs the caller actually spelled out
    (callers filter out their not-passed sentinel before calling).  With
    no ``config`` the kwargs are applied over the defaults; with one,
    every explicit kwarg must agree with the config's value — agreement
    is fine (the caller is being redundant, not wrong), disagreement is
    a :class:`~repro.exceptions.ConfigurationError` naming every
    conflicting knob.
    """
    if config_cls is None:
        from repro.api import BuildConfig as config_cls
    if config is None:
        return config_cls().replace(**explicit) if explicit else config_cls()
    if not isinstance(config, config_cls):
        raise ConfigurationError(
            f"config= must be a {config_cls.__name__}, got {type(config).__name__}"
        )
    conflicts = {
        name: value
        for name, value in explicit.items()
        if value != getattr(config, name)
    }
    if conflicts:
        detail = ", ".join(
            f"{name}={value!r} (config has {getattr(config, name)!r})"
            for name, value in sorted(conflicts.items())
        )
        raise ConfigurationError(
            f"kwargs conflict with config=: {detail}; drop one spelling "
            "or make them agree"
        )
    return config


__all__ = ["resolve_config_kwargs", "resolve_renamed_kwarg"]
