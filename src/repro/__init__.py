"""CT-Index: scaling up distance labeling on graphs with core-periphery properties.

A from-scratch Python reproduction of the SIGMOD 2020 paper by Li, Qiao,
Qin, Zhang, Chang, and Lin.  The package ships:

* :mod:`repro.graphs` — the graph substrate (types, I/O, traversal,
  generators, twin reduction);
* :mod:`repro.treedec` — minimum-degree-elimination tree decompositions,
  the core-tree split, and O(1) LCA;
* :mod:`repro.labeling` — PLL / PSL / PSL+ / PSL* 2-hop labelings and
  the H2H and CD baselines;
* :mod:`repro.core` — the paper's contribution, the CT-Index;
* :mod:`repro.serving` — the batch-aware, instrumented query engine
  (latency histograms, cache/probe counters, ``stats_snapshot()``);
* :mod:`repro.bench` — the experiment harness that regenerates every
  table and figure of the evaluation section.

Quickstart::

    from repro import CTIndex
    from repro.graphs.generators import core_periphery_graph, CorePeripheryConfig

    graph = core_periphery_graph(CorePeripheryConfig(), seed=7)
    index = CTIndex.build(graph, bandwidth=20)
    index.distance(0, graph.n - 1)
"""

from repro.core import CTIndex, build_ct_index
from repro.exceptions import (
    DecompositionError,
    GraphError,
    IndexConstructionError,
    OverMemoryError,
    QueryError,
    ReproError,
    SerializationError,
)
from repro.graphs import Graph, GraphBuilder
from repro.paths import distance_many, is_shortest_path, shortest_path
from repro.serving import QueryEngine

__version__ = "1.0.0"

__all__ = [
    "CTIndex",
    "DecompositionError",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "IndexConstructionError",
    "OverMemoryError",
    "QueryEngine",
    "QueryError",
    "ReproError",
    "SerializationError",
    "__version__",
    "build_ct_index",
    "distance_many",
    "is_shortest_path",
    "shortest_path",
]
