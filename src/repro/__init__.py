"""CT-Index: scaling up distance labeling on graphs with core-periphery properties.

A from-scratch Python reproduction of the SIGMOD 2020 paper by Li, Qiao,
Qin, Zhang, Chang, and Lin.  The package ships:

* :mod:`repro.graphs` — the graph substrate (types, I/O, traversal,
  generators, twin reduction);
* :mod:`repro.treedec` — minimum-degree-elimination tree decompositions,
  the core-tree split, and O(1) LCA;
* :mod:`repro.labeling` — PLL / PSL / PSL+ / PSL* 2-hop labelings and
  the H2H and CD baselines;
* :mod:`repro.core` — the paper's contribution, the CT-Index;
* :mod:`repro.serving` — the batch-aware, instrumented query engine
  (latency histograms, cache/probe counters, ``stats_snapshot()``);
* :mod:`repro.bench` — the experiment harness that regenerates every
  table and figure of the evaluation section.

Quickstart (the stable facade — see :mod:`repro.api`)::

    import repro
    from repro.graphs.generators import core_periphery_graph, CorePeripheryConfig

    graph = core_periphery_graph(CorePeripheryConfig(), seed=7)
    index = repro.build(graph, bandwidth=20, backend="flat")
    repro.save(index, "index.bin", format="binary")
    repro.query(index, 0, graph.n - 1)

Observability (off by default, no-op when disabled)::

    import repro.obs as obs

    with obs.observe() as tracer:
        index = repro.build(graph, bandwidth=20)
    obs.write_trace(tracer, "build.trace.jsonl")
"""

from repro.api import (
    SAVE_FORMATS,
    BuildConfig,
    build,
    load,
    query,
    query_batch,
    query_from,
    save,
)
from repro.core import CTIndex, build_ct_index
from repro.exceptions import (
    ConfigurationError,
    DecompositionError,
    GraphError,
    IndexConstructionError,
    OverMemoryError,
    QueryError,
    ReproError,
    SerializationError,
)
from repro.graphs import Graph, GraphBuilder
from repro.paths import distance_many, is_shortest_path, shortest_path
from repro.serving import QueryEngine

__version__ = "1.1.0"

__all__ = [
    "BuildConfig",
    "CTIndex",
    "ConfigurationError",
    "DecompositionError",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "IndexConstructionError",
    "OverMemoryError",
    "QueryEngine",
    "QueryError",
    "ReproError",
    "SAVE_FORMATS",
    "SerializationError",
    "__version__",
    "build",
    "build_ct_index",
    "distance_many",
    "is_shortest_path",
    "load",
    "query",
    "query_batch",
    "query_from",
    "save",
    "shortest_path",
]
