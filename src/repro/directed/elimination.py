"""Directed weighted minimum-degree elimination.

The directed analogue of Algorithm 1's lines 1-17.  The elimination
*order* is driven by the underlying undirected degree (|in ∪ out|), so
the bag/forest/core skeleton is exactly the undirected core-tree
decomposition of the digraph's shadow graph — which is what makes the
separator arguments carry over: every directed path is in particular an
undirected path, so it crosses the same separators.

Distances stay directed throughout: eliminating ``v`` adds, for every
in-neighbor ``u`` and out-neighbor ``w``, the shortcut arc ``u → w``
weighted ``δ(u → v) + δ(v → w)`` (kept only if shorter than an existing
arc).  The recorded per-step weights are therefore *directed* local
distances: ``local_in[u] = δ⁻(u → v_i)`` and
``local_out[w] = δ⁻(v_i → w)`` — the directed Lemma 14.
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.exceptions import DecompositionError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Weight


@dataclasses.dataclass
class DirectedEliminationStep:
    """One directed MDE round.

    ``neighbors`` is the *undirected* transient neighborhood (the bag is
    ``{v_i} ∪ neighbors``); ``local_in``/``local_out`` carry the
    directed local distances into and out of ``v_i`` (a neighbor absent
    from one of the maps is unreachable in that direction locally).
    """

    node: int
    neighbors: tuple[int, ...]
    local_in: dict[int, Weight]
    local_out: dict[int, Weight]


@dataclasses.dataclass
class DirectedEliminationResult:
    """Deliverables of a bounded directed MDE run."""

    graph: DiGraph
    steps: list[DirectedEliminationStep]
    position: list[int | None]
    core_nodes: list[int]
    core_out_adjacency: dict[int, dict[int, Weight]]
    bandwidth: int

    @property
    def boundary(self) -> int:
        """λ — the number of eliminated nodes."""
        return len(self.steps)

    def core_digraph(self) -> tuple[DiGraph, list[int]]:
        """Compact the reduced directed core graph.

        Returns ``(digraph, originals)`` like the undirected counterpart.
        """
        originals = self.core_nodes
        compact = {v: i for i, v in enumerate(originals)}
        arcs = []
        for u, row in self.core_out_adjacency.items():
            for w, weight in row.items():
                arcs.append((compact[u], compact[w], weight))
        return DiGraph.from_arcs(len(originals), arcs), list(originals)


def directed_minimum_degree_elimination(
    graph: DiGraph, bandwidth: int
) -> DirectedEliminationResult:
    """Run bounded directed MDE on ``graph``.

    Elimination stops once the minimum undirected degree exceeds
    ``bandwidth`` (the same stopping rule as the undirected Section 4.3).
    """
    if bandwidth < 0:
        raise DecompositionError(f"bandwidth must be non-negative, got {bandwidth}")

    out_adj: list[dict[int, Weight] | None] = [
        dict(graph.out_neighbors(v)) for v in graph.nodes()
    ]
    in_adj: list[dict[int, Weight] | None] = [
        dict(graph.in_neighbors(v)) for v in graph.nodes()
    ]
    # Undirected skeleton: drives the order, bags, and fill-in.  It must
    # receive the FULL clique over every eliminated bag — not only the
    # pairs with a directed shortcut — so the Lemma 2 ancestor property
    # (every bag member is a chain ancestor or core) survives in the
    # directed setting.  The skeleton is always a superset of the
    # directed adjacency.
    skeleton: list[set[int] | None] = [
        set(dict(graph.out_neighbors(v))) | set(dict(graph.in_neighbors(v)))
        for v in graph.nodes()
    ]

    heap = [(len(skeleton[v] or ()), v) for v in graph.nodes()]
    heapq.heapify(heap)
    steps: list[DirectedEliminationStep] = []
    position: list[int | None] = [None] * graph.n

    while heap:
        degree, v = heapq.heappop(heap)
        row = skeleton[v]
        if row is None or degree != len(row):
            continue  # eliminated or stale entry
        if degree > bandwidth:
            break
        out_row = out_adj[v]
        in_row = in_adj[v]
        assert out_row is not None and in_row is not None
        neighbors = tuple(sorted(row))
        local_in = dict(in_row)
        local_out = dict(out_row)
        position[v] = len(steps)
        steps.append(
            DirectedEliminationStep(
                node=v, neighbors=neighbors, local_in=local_in, local_out=local_out
            )
        )

        # Detach v from skeleton and directed adjacencies.
        for u in neighbors:
            skeleton_u = skeleton[u]
            assert skeleton_u is not None
            skeleton_u.discard(v)
        for w in out_row:
            in_w = in_adj[w]
            assert in_w is not None
            del in_w[v]
        for u in in_row:
            out_u = out_adj[u]
            assert out_u is not None
            del out_u[v]
        skeleton[v] = None
        out_adj[v] = None
        in_adj[v] = None
        # Skeleton fill-in: the full clique over the bag.
        for a_index, u in enumerate(neighbors):
            skeleton_u = skeleton[u]
            assert skeleton_u is not None
            for w in neighbors[a_index + 1 :]:
                skeleton_u.add(w)
                skeleton_w = skeleton[w]
                assert skeleton_w is not None
                skeleton_w.add(u)
        # Directed shortcuts u -> w through v where directed wedges exist.
        for u, du in local_in.items():
            out_u = out_adj[u]
            assert out_u is not None
            for w, dw in local_out.items():
                if u == w:
                    continue
                through = du + dw
                old = out_u.get(w)
                if old is None or through < old:
                    out_u[w] = through
                    in_w = in_adj[w]
                    assert in_w is not None
                    in_w[u] = through
        for u in neighbors:
            skeleton_u = skeleton[u]
            assert skeleton_u is not None
            heapq.heappush(heap, (len(skeleton_u), u))

    core_nodes = sorted(v for v in graph.nodes() if position[v] is None)
    core_out = {v: dict(out_adj[v] or {}) for v in core_nodes}
    return DirectedEliminationResult(
        graph=graph,
        steps=steps,
        position=position,
        core_nodes=core_nodes,
        core_out_adjacency=core_out,
        bandwidth=bandwidth,
    )
