"""Directed CT-Index.

The paper states (Section 2) that its techniques extend to directed
graphs; this module is that extension, built from three observations:

1. the *skeleton* (forest, core, interfaces, LCA) can be taken from the
   underlying undirected structure, because a directed path is in
   particular an undirected path and therefore crosses the same
   bag separators (Lemma 1 applies verbatim);
2. the *distances* must stay directed: the elimination records
   directional local distances δ⁻(u → v_i) / δ⁻(v_i → w) and the tree
   labels split into an **out** side (node → target) and an **in** side
   (target → node), each following the directed form of Lemma 15;
3. the *core* is a directed 2-hop labeling
   (:mod:`repro.labeling.directed_pll`) over the reduced core digraph,
   whose arcs carry λ-local directed distances (directed Lemma 7).

Queries dispatch over the same four cases as the undirected index, with
``L_out``-side extensions on the source and ``L_in``-side extensions on
the target (the directed Lemma 9).
"""

from __future__ import annotations

import time

from repro.directed.elimination import (
    DirectedEliminationResult,
    directed_minimum_degree_elimination,
)
from repro.exceptions import QueryError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import INF, Weight
from repro.labeling.base import DistanceIndex, MemoryBudget
from repro.labeling.directed_pll import DirectedPLL, build_directed_pll
from repro.treedec.lca import ForestLCA


class DirectedCTIndex(DistanceIndex):
    """Exact directed-distance index with the CT core/forest split."""

    method_name = "CT-directed"

    def __init__(
        self,
        graph: DiGraph,
        elimination: DirectedEliminationResult,
        parent: list[int | None],
        root: list[int],
        interface: dict[int, tuple[int, ...]],
        out_labels: list[dict[int, Weight]],
        in_labels: list[dict[int, Weight]],
        core_index: DirectedPLL,
        core_originals: list[int],
    ) -> None:
        self.graph = graph
        self.elimination = elimination
        self.parent = parent
        self.root = root
        self.interface = interface
        #: out_labels[pos][target] = local distance node -> target.
        self.out_labels = out_labels
        #: in_labels[pos][target] = local distance target -> node.
        self.in_labels = in_labels
        self.core_index = core_index
        self._core_compact = {orig: i for i, orig in enumerate(core_originals)}
        self._lca = ForestLCA(parent)
        self.method_name = f"CT-directed-{elimination.bandwidth}"

    # ------------------------------------------------------------------

    @property
    def bandwidth(self) -> int:
        return self.elimination.bandwidth

    @property
    def boundary(self) -> int:
        return self.elimination.boundary

    @property
    def core_size(self) -> int:
        return len(self._core_compact)

    def size_entries(self) -> int:
        tree = sum(len(label) for label in self.out_labels)
        tree += sum(len(label) for label in self.in_labels)
        return tree + self.core_index.size_entries()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def distance(self, s: int, t: int) -> Weight:
        """Exact directed distance from ``s`` to ``t``."""
        if not 0 <= s < self.graph.n or not 0 <= t < self.graph.n:
            raise QueryError(f"query nodes ({s}, {t}) out of range")
        if s == t:
            return 0
        position = self.elimination.position
        pos_s = position[s]
        pos_t = position[t]
        if pos_s is None and pos_t is None:
            return self._core_distance(s, t)
        if pos_s is not None and pos_t is None:
            return self._tree_to_core(s, pos_s, t)
        if pos_s is None:
            assert pos_t is not None
            return self._core_to_tree(s, t, pos_t)
        assert pos_s is not None and pos_t is not None
        if self._lca.same_tree(pos_s, pos_t):
            return self._same_tree(s, pos_s, t, pos_t)
        return self._cross_tree(pos_s, pos_t)

    # -- case helpers ---------------------------------------------------

    def _core_distance(self, u: int, v: int) -> Weight:
        if u == v:
            return 0
        return self.core_index.distance(self._core_compact[u], self._core_compact[v])

    def _out_local(self, pos: int, target: int) -> Weight:
        """Local distance node-at-pos -> target (0 for itself)."""
        if self.elimination.steps[pos].node == target:
            return 0
        return self.out_labels[pos].get(target, INF)

    def _in_local(self, pos: int, target: int) -> Weight:
        """Local distance target -> node-at-pos (0 for itself)."""
        if self.elimination.steps[pos].node == target:
            return 0
        return self.in_labels[pos].get(target, INF)

    def _tree_to_core(self, s: int, pos_s: int, t: int) -> Weight:
        best: Weight = INF
        for u in self.interface[self.root[pos_s]]:
            head = self._out_local(pos_s, u)
            if head == INF:
                continue
            total = head + self._core_distance(u, t)
            if total < best:
                best = total
        return best

    def _core_to_tree(self, s: int, t: int, pos_t: int) -> Weight:
        best: Weight = INF
        for w in self.interface[self.root[pos_t]]:
            tail = self._in_local(pos_t, w)
            if tail == INF:
                continue
            total = self._core_distance(s, w) + tail
            if total < best:
                best = total
        return best

    def _cross_tree(self, pos_s: int, pos_t: int) -> Weight:
        ext_out = self._extended_out(pos_s)
        ext_in = self._extended_in(pos_t)
        return _dict_intersection(ext_out, ext_in)

    def _same_tree(self, s: int, pos_s: int, t: int, pos_t: int) -> Weight:
        meet = self._lca.lca(pos_s, pos_t)
        step = self.elimination.steps[meet]
        d2: Weight = INF
        for u in (step.node,) + step.neighbors:
            head = self._out_local(pos_s, u)
            if head == INF:
                continue
            tail = self._in_local(pos_t, u)
            if head + tail < d2:
                d2 = head + tail
        d4 = _dict_intersection(self._extended_out(pos_s), self._extended_in(pos_t))
        return min(d2, d4)

    def _extended_out(self, pos: int) -> dict[int, Weight]:
        """Directed extension, source side: shifted out-labels of the interface."""
        extended: dict[int, Weight] = {}
        for u in self.interface[self.root[pos]]:
            head = self._out_local(pos, u)
            if head == INF:
                continue
            compact = self._core_compact[u]
            for rank, dist in self.core_index.out_labels.iter_rank_entries(compact):
                total = head + dist
                old = extended.get(rank)
                if old is None or total < old:
                    extended[rank] = total
        return extended

    def _extended_in(self, pos: int) -> dict[int, Weight]:
        """Directed extension, target side: shifted in-labels of the interface."""
        extended: dict[int, Weight] = {}
        for w in self.interface[self.root[pos]]:
            tail = self._in_local(pos, w)
            if tail == INF:
                continue
            compact = self._core_compact[w]
            for rank, dist in self.core_index.in_labels.iter_rank_entries(compact):
                total = tail + dist
                old = extended.get(rank)
                if old is None or total < old:
                    extended[rank] = total
        return extended


def build_directed_ct_index(
    graph: DiGraph,
    bandwidth: int,
    *,
    budget: MemoryBudget | None = None,
) -> DirectedCTIndex:
    """Build a directed CT-Index over ``graph`` at ``bandwidth``."""
    started = time.perf_counter()
    if budget is None:
        budget = MemoryBudget.unlimited()
    elimination = directed_minimum_degree_elimination(graph, bandwidth)
    parent, root, interface = _derive_structure(elimination)
    out_labels, in_labels = _build_tree_labels(elimination, parent, root, interface, budget)
    core_digraph, originals = elimination.core_digraph()
    core_index = build_directed_pll(core_digraph, budget=budget)
    index = DirectedCTIndex(
        graph=graph,
        elimination=elimination,
        parent=parent,
        root=root,
        interface=interface,
        out_labels=out_labels,
        in_labels=in_labels,
        core_index=core_index,
        core_originals=originals,
    )
    index.build_seconds = time.perf_counter() - started
    return index


def _derive_structure(
    elimination: DirectedEliminationResult,
) -> tuple[list[int | None], list[int], dict[int, tuple[int, ...]]]:
    """Parents f(i), roots r(i), and interfaces over the undirected skeleton."""
    position = elimination.position
    boundary = elimination.boundary
    parent: list[int | None] = [None] * boundary
    root: list[int] = [0] * boundary
    interface: dict[int, tuple[int, ...]] = {}
    for pos in range(boundary - 1, -1, -1):
        step = elimination.steps[pos]
        tree_positions = [position[u] for u in step.neighbors if position[u] is not None]
        parent[pos] = min(tree_positions) if tree_positions else None  # type: ignore[type-var]
    for pos in range(boundary - 1, -1, -1):
        p = parent[pos]
        if p is None:
            root[pos] = pos
            step = elimination.steps[pos]
            interface[pos] = tuple(sorted(step.neighbors))
        else:
            root[pos] = root[p]
    return parent, root, interface


def _build_tree_labels(
    elimination: DirectedEliminationResult,
    parent: list[int | None],
    root: list[int],
    interface: dict[int, tuple[int, ...]],
    budget: MemoryBudget,
) -> tuple[list[dict[int, Weight]], list[dict[int, Weight]]]:
    """Directional λ-local labels (the directed lines 19-32)."""
    position = elimination.position
    boundary = elimination.boundary
    out_labels: list[dict[int, Weight]] = [{} for _ in range(boundary)]
    in_labels: list[dict[int, Weight]] = [{} for _ in range(boundary)]

    def node_at(pos: int) -> int:
        return elimination.steps[pos].node

    def lookup_out(pos_j: int, target: int) -> Weight:
        """Local distance node-at-pos_j -> target via either endpoint."""
        if node_at(pos_j) == target:
            return 0
        stored = out_labels[pos_j].get(target)
        if stored is not None:
            return stored
        pos_target = position[target]
        if pos_target is None:
            return INF  # interface target not locally out-reachable from v_j
        return in_labels[pos_target].get(node_at(pos_j), INF)

    def lookup_in(pos_j: int, target: int) -> Weight:
        """Local distance target -> node-at-pos_j via either endpoint."""
        if node_at(pos_j) == target:
            return 0
        stored = in_labels[pos_j].get(target)
        if stored is not None:
            return stored
        pos_target = position[target]
        if pos_target is None:
            return INF
        return out_labels[pos_target].get(node_at(pos_j), INF)

    def chain_targets(pos: int) -> list[int]:
        chain: list[int] = []
        p = parent[pos]
        while p is not None:
            chain.append(node_at(p))
            p = parent[p]
        return chain

    for pos in range(boundary - 1, -1, -1):
        step = elimination.steps[pos]
        targets = chain_targets(pos)
        for u in interface[root[pos]]:
            if u not in targets:
                targets.append(u)
        tree_out = [
            (v_j, position[v_j])
            for v_j in step.local_out
            if position[v_j] is not None
        ]
        tree_in = [
            (v_j, position[v_j]) for v_j in step.local_in if position[v_j] is not None
        ]
        out_label: dict[int, Weight] = {}
        in_label: dict[int, Weight] = {}
        for target in targets:
            best_out = step.local_out.get(target, INF)
            for v_j, pos_j in tree_out:
                if v_j == target:
                    continue
                assert pos_j is not None
                through = step.local_out[v_j] + lookup_out(pos_j, target)
                if through < best_out:
                    best_out = through
            if best_out != INF:
                out_label[target] = best_out
            best_in = step.local_in.get(target, INF)
            for v_j, pos_j in tree_in:
                if v_j == target:
                    continue
                assert pos_j is not None
                through = lookup_in(pos_j, target) + step.local_in[v_j]
                if through < best_in:
                    best_in = through
            if best_in != INF:
                in_label[target] = best_in
        budget.charge(len(out_label) + len(in_label))
        out_labels[pos] = out_label
        in_labels[pos] = in_label
    return out_labels, in_labels


def _dict_intersection(map_a: dict[int, Weight], map_b: dict[int, Weight]) -> Weight:
    if len(map_a) > len(map_b):
        map_a, map_b = map_b, map_a
    best: Weight = INF
    for key, da in map_a.items():
        db = map_b.get(key)
        if db is not None and da + db < best:
            best = da + db
    return best
