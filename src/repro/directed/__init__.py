"""Directed-graph extension of the CT-Index (the paper's Section 2 remark)."""

from repro.directed.ct import DirectedCTIndex, build_directed_ct_index
from repro.directed.elimination import (
    DirectedEliminationResult,
    DirectedEliminationStep,
    directed_minimum_degree_elimination,
)

__all__ = [
    "DirectedCTIndex",
    "DirectedEliminationResult",
    "DirectedEliminationStep",
    "build_directed_ct_index",
    "directed_minimum_degree_elimination",
]
