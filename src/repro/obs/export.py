"""Trace export: JSON-lines files, summaries, and tree rendering.

A trace file is one JSON object per line (the ``as_record()`` form of
:class:`~repro.obs.tracing.Span`), so it streams, greps, and appends —
the same reasons the bench artifacts are JSON.  ``repro trace FILE``
renders a file back as an indented span tree plus a per-name summary
table; the functions here are that command's library form.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.exceptions import SerializationError
from repro.obs.tracing import Span, Tracer

PathLike = Union[str, os.PathLike]


def write_trace(spans, path: PathLike) -> int:
    """Write spans (or a :class:`Tracer`) to ``path`` as JSON lines.

    Returns the number of spans written.
    """
    if isinstance(spans, Tracer):
        spans = spans.finished
    records = [
        span.as_record() if isinstance(span, Span) else span for span in spans
    ]
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, allow_nan=False, sort_keys=True))
            handle.write("\n")
    return len(records)


def read_trace(path: PathLike) -> list[dict]:
    """Read a JSON-lines trace file back into span records."""
    path = Path(path)
    records: list[dict] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SerializationError(
                        f"bad trace line {line_no} in {path}: {exc}"
                    ) from exc
                if not isinstance(record, dict) or "name" not in record:
                    raise SerializationError(
                        f"bad trace line {line_no} in {path}: not a span record"
                    )
                records.append(record)
    except OSError as exc:
        raise SerializationError(f"cannot read trace file {path}: {exc}") from exc
    return records


def summarize_trace(records: list[dict]) -> list[dict]:
    """Per-name aggregate rows: count, total/mean/max duration (ms).

    Rows are sorted by total duration descending — the profile view:
    the top row is where the time went.
    """
    totals: dict[str, dict] = {}
    for record in records:
        entry = totals.setdefault(
            record["name"], {"name": record["name"], "count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        entry["count"] += 1
        entry["total_us"] += record["dur_us"]
        entry["max_us"] = max(entry["max_us"], record["dur_us"])
    rows = []
    for entry in sorted(totals.values(), key=lambda e: -e["total_us"]):
        rows.append(
            {
                "name": entry["name"],
                "count": entry["count"],
                "total_ms": round(entry["total_us"] / 1e3, 3),
                "mean_us": round(entry["total_us"] / entry["count"], 1),
                "max_us": round(entry["max_us"], 1),
            }
        )
    return rows


def format_trace_tree(records: list[dict], *, max_spans: int = 200) -> str:
    """Indented parent/child rendering of a span list.

    Children are nested under their ``parent`` id; top-level spans print
    in start order.  Long traces are truncated at ``max_spans`` lines
    with a trailing marker (the summary still covers everything).
    """
    by_parent: dict[int | None, list[dict]] = {}
    for record in records:
        by_parent.setdefault(record.get("parent"), []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: r.get("start_us", 0.0))

    lines: list[str] = []

    def render(record: dict, depth: int) -> None:
        if len(lines) >= max_spans:
            return
        attrs = record.get("attrs") or {}
        attr_text = (
            " " + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) if attrs else ""
        )
        lines.append(
            f"{'  ' * depth}{record['name']}  {record['dur_us'] / 1e3:.3f} ms{attr_text}"
        )
        for child in by_parent.get(record.get("id"), []):
            render(child, depth + 1)

    for top in by_parent.get(None, []):
        render(top, 0)
    truncated = len(records) - len(lines)
    if truncated > 0:
        lines.append(f"... {truncated} more spans (see summary)")
    return "\n".join(lines)


__all__ = ["format_trace_tree", "read_trace", "summarize_trace", "write_trace"]
