"""Observability: metrics registry, structured tracing, profiling hooks.

This package is the substrate every performance-facing layer reports
through:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`LatencyHistogram` primitives (the log₂ histogram promoted out
  of ``repro.serving.metrics``);
* :mod:`repro.obs.registry` — the process-wide
  :class:`MetricsRegistry` (get-or-create, labeled, Prometheus-text
  export);
* :mod:`repro.obs.tracing` — span-based tracing with a context-manager
  API and JSON-lines export;
* :mod:`repro.obs.profiling` — cProfile behind a context manager, for
  the CLI ``--profile`` flags.

**Everything is off by default and compiles to a no-op.**  The
module-level enabled flag gates the instrumentation threaded through
the hot paths (MDE elimination, PSL levels, forest labeling, CSR
compaction, snapshot load, per-query serving spans): while disabled, a
:func:`span` call returns one shared no-op object and counter updates
are skipped behind a single :func:`enabled` predicate per phase.
``repro obs-bench`` measures the residual overhead and records it into
``BENCH_obs.json``.

Turning it on::

    import repro.obs as obs

    with obs.observe() as tracer:          # tracing + counters for a block
        index = repro.build(graph, bandwidth=16)
    obs.write_trace(tracer, "build.trace.jsonl")
    print(obs.registry().render_prometheus())

or imperatively (the CLI flags do this)::

    obs.enable()
    ... work ...
    tracer = obs.disable()
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.export import (
    format_trace_tree,
    read_trace,
    summarize_trace,
    write_trace,
)
from repro.obs.metrics import BUCKET_EDGES, Counter, Gauge, LatencyHistogram
from repro.obs.profiling import ProfileReport, profile_block
from repro.obs.registry import MetricsRegistry, registry
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

#: Module-level switch for the counter/gauge instrumentation in the hot
#: paths.  Span emission is additionally gated on a tracer being
#: installed (see :mod:`repro.obs.tracing`).
_ENABLED = False


def enabled() -> bool:
    """True while observability instrumentation is switched on."""
    return _ENABLED


def enable(tracer: Tracer | None = None) -> Tracer:
    """Switch instrumentation on and install a tracer; returns it."""
    global _ENABLED
    _ENABLED = True
    return enable_tracing(tracer)


def disable() -> Tracer | None:
    """Switch instrumentation off; returns the tracer with its spans."""
    global _ENABLED
    _ENABLED = False
    return disable_tracing()


@contextmanager
def observe(tracer: Tracer | None = None):
    """Enable instrumentation for one block, restoring state after.

    Yields the active :class:`Tracer`.  A tracer already installed via
    :func:`repro.obs.tracing.capture` (or :func:`enable`) is reused, so
    nesting the two composes instead of shadowing.
    """
    global _ENABLED
    previous_flag = _ENABLED
    previous_tracer = current_tracer()
    installed = enable(tracer if tracer is not None else previous_tracer)
    try:
        yield installed
    finally:
        _ENABLED = previous_flag
        if previous_tracer is None:
            disable_tracing()
        else:
            enable_tracing(previous_tracer)


__all__ = [
    "BUCKET_EDGES",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ProfileReport",
    "Span",
    "Tracer",
    "current_tracer",
    "disable",
    "enable",
    "enabled",
    "format_trace_tree",
    "observe",
    "profile_block",
    "read_trace",
    "registry",
    "span",
    "summarize_trace",
    "tracing_enabled",
    "write_trace",
]
