"""Metric primitives: counters, gauges, and log₂-bucket histograms.

:class:`LatencyHistogram` is the fixed-bucket log₂ histogram that grew
up in ``repro.serving.metrics`` (which still re-exports it): recording
is O(log #buckets) with no allocation, so it is cheap enough to sit on
the hot query path, and the bucket layout is identical across
histograms so snapshots can be compared side by side (cached vs
uncached, case by case).

:class:`Counter` and :class:`Gauge` are the two scalar companions every
metrics system ships: a counter only accumulates (requests served,
elimination rounds run), a gauge holds the latest observed value
(boundary size, resident bytes).  All three expose ``reset()`` so a
long-lived process can zero a measurement window without re-registering
the metric — registry entries keep their identity across resets.
"""

from __future__ import annotations

import bisect

from repro.exceptions import ConfigurationError

#: Bucket upper edges in seconds: 1µs · 2^k for k = 0..20 (≈ 1µs to 1s).
#: Durations beyond the last edge land in a final overflow bucket.
BUCKET_EDGES: tuple[float, ...] = tuple((2.0**k) * 1e-6 for k in range(21))


class Counter:
    """Monotonically increasing count (requests, rounds, probes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter(value={self.value})"


class Gauge:
    """Last-observed value (sizes, ratios, high-water marks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge(value={self.value})"


class LatencyHistogram:
    """Log₂-bucket latency histogram with exact count/mean/min/max."""

    __slots__ = ("counts", "count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_EDGES) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Account one duration (in seconds)."""
        self.counts[bisect.bisect_left(BUCKET_EDGES, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Exact mean duration (0.0 when empty)."""
        return self.total_seconds / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution percentile estimate, in seconds.

        Returns the upper edge of the bucket containing the ``q``-th
        quantile (``0 < q <= 1``); 0.0 when the histogram is empty.  The
        overflow bucket reports the largest recorded duration.
        """
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile {q} outside (0, 1]")
        if not self.count:
            return 0.0
        threshold = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= threshold:
                if index < len(BUCKET_EDGES):
                    return BUCKET_EDGES[index]
                return self.max_seconds
        return self.max_seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total_seconds += other.total_seconds
        if other.count:
            self.min_seconds = min(self.min_seconds, other.min_seconds)
            self.max_seconds = max(self.max_seconds, other.max_seconds)

    def reset(self) -> None:
        """Zero every bucket and the exact statistics."""
        for index in range(len(self.counts)):
            self.counts[index] = 0
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def snapshot(self) -> dict:
        """Plain-data summary (microseconds) for reports and JSON."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_us": self.mean_seconds * 1e6,
            "min_us": self.min_seconds * 1e6,
            "max_us": self.max_seconds * 1e6,
            "p50_us": self.percentile(0.50) * 1e6,
            "p95_us": self.percentile(0.95) * 1e6,
            "p99_us": self.percentile(0.99) * 1e6,
            # Sparse bucket view: upper edge (µs) -> count, non-empty only.
            "buckets": {
                (BUCKET_EDGES[i] * 1e6 if i < len(BUCKET_EDGES) else float("inf")): c
                for i, c in enumerate(self.counts)
                if c
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, "
            f"mean_us={self.mean_seconds * 1e6:.2f})"
        )


__all__ = ["BUCKET_EDGES", "Counter", "Gauge", "LatencyHistogram"]
