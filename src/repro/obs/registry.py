"""Process-wide metrics registry.

One :class:`MetricsRegistry` maps ``(name, labels)`` pairs to metric
instances (:class:`~repro.obs.metrics.Counter`,
:class:`~repro.obs.metrics.Gauge`,
:class:`~repro.obs.metrics.LatencyHistogram`).  Accessors are
get-or-create, so instrumented code never needs a registration phase::

    registry().counter("mde.rounds").inc(boundary)
    registry().histogram("serving.request_latency", kind="single").record(dt)

Metric identity is stable: repeated lookups return the same object, and
``reset()`` zeroes values without dropping entries, so long-lived
handles (the serving engine keeps direct references to its histograms)
survive a measurement-window reset.

``render_prometheus()`` emits the text exposition format (counters and
gauges as single samples, histograms as cumulative ``_bucket`` series
plus ``_sum``/``_count``), which is what the ``--metrics`` CLI flags
dump.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.obs.metrics import BUCKET_EDGES, Counter, Gauge, LatencyHistogram

#: Label key/value pairs, sorted — the hashable half of a metric key.
LabelSet = tuple[tuple[str, str], ...]


def _label_set(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """Get-or-create store of named, optionally labeled metrics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], object] = {}

    # ------------------------------------------------------------------
    # Accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        return self._get_or_create(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        return self._get_or_create(name, labels, Gauge)

    def histogram(self, name: str, **labels) -> LatencyHistogram:
        """The histogram registered under ``name`` + ``labels``."""
        return self._get_or_create(name, labels, LatencyHistogram)

    def _get_or_create(self, name: str, labels: dict, kind: type):
        key = (name, _label_set(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = kind()
        elif type(metric) is not kind:
            raise ConfigurationError(
                f"metric {name!r} with labels {dict(key[1])} is a "
                f"{type(metric).__name__}, requested as {kind.__name__}"
            )
        return metric

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._metrics)

    def items(self):
        """``((name, labels), metric)`` pairs, sorted by name then labels."""
        return sorted(self._metrics.items(), key=lambda item: item[0])

    def reset(self) -> None:
        """Zero every metric's value; entries (and handles) survive."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every entry.  Outstanding handles become unregistered."""
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data dump: ``name`` -> list of ``{labels, ...value}``."""
        out: dict[str, list[dict]] = {}
        for (name, labels), metric in self.items():
            entry: dict = {"labels": dict(labels)}
            if isinstance(metric, LatencyHistogram):
                entry["histogram"] = metric.snapshot()
            else:
                entry["value"] = metric.snapshot()
            out.setdefault(name, []).append(entry)
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: list[str] = []
        last_name: str | None = None
        for (name, labels), metric in self.items():
            metric_name = _sanitize(name)
            if isinstance(metric, Counter):
                kind = "counter"
            elif isinstance(metric, Gauge):
                kind = "gauge"
            else:
                kind = "histogram"
            if name != last_name:
                lines.append(f"# TYPE {metric_name} {kind}")
                last_name = name
            if isinstance(metric, LatencyHistogram):
                cumulative = 0
                for index, bucket_count in enumerate(metric.counts):
                    cumulative += bucket_count
                    edge = (
                        _format_value(BUCKET_EDGES[index])
                        if index < len(BUCKET_EDGES)
                        else "+Inf"
                    )
                    bucket_labels = labels + (("le", edge),)
                    lines.append(
                        f"{metric_name}_bucket{_render_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{metric_name}_sum{_render_labels(labels)} "
                    f"{_format_value(metric.total_seconds)}"
                )
                lines.append(
                    f"{metric_name}_count{_render_labels(labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{metric_name}{_render_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    """Metric name with Prometheus-illegal characters folded to ``_``."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_sanitize(k)}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


#: The process-wide default registry the instrumented hot paths use.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT


__all__ = ["MetricsRegistry", "registry"]
