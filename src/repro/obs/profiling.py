"""Deterministic-profiler hooks (cProfile behind a context manager).

Tracing answers "which phase is slow"; the profiler answers "which
*function* inside the phase".  :func:`profile_block` wraps any block in
:mod:`cProfile` and hands back a :class:`ProfileReport` whose ``text()``
is the familiar ``pstats`` top-N table — this is what the CLI
``--profile`` flags print.  Profiling is orthogonal to the enabled flag:
it costs real overhead (every Python call is intercepted), so it only
runs where explicitly requested and is never wired into a hot path by
default.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager

from repro.exceptions import ConfigurationError

#: pstats sort keys accepted by :func:`profile_block`.
SORT_KEYS = ("cumulative", "tottime", "calls", "ncalls", "time")


class ProfileReport:
    """Holds one finished cProfile run; render with :meth:`text`."""

    def __init__(self, profiler: cProfile.Profile) -> None:
        self._profiler = profiler

    def stats(self, sort: str = "cumulative") -> pstats.Stats:
        """The raw :class:`pstats.Stats`, sorted."""
        if sort not in SORT_KEYS:
            raise ConfigurationError(
                f"unknown profile sort {sort!r}; expected one of {SORT_KEYS}"
            )
        return pstats.Stats(self._profiler).sort_stats(sort)

    def text(self, *, sort: str = "cumulative", limit: int = 25) -> str:
        """Top-``limit`` rows of the profile as a pstats table."""
        buffer = io.StringIO()
        stats = pstats.Stats(self._profiler, stream=buffer)
        if sort not in SORT_KEYS:
            raise ConfigurationError(
                f"unknown profile sort {sort!r}; expected one of {SORT_KEYS}"
            )
        stats.sort_stats(sort).print_stats(limit)
        return buffer.getvalue()


@contextmanager
def profile_block():
    """Profile the enclosed block; yields a :class:`ProfileReport`.

    The report is empty until the block exits::

        with profile_block() as report:
            engine.query_batch(pairs)
        print(report.text(limit=10))
    """
    profiler = cProfile.Profile()
    report = ProfileReport(profiler)
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()


__all__ = ["ProfileReport", "SORT_KEYS", "profile_block"]
