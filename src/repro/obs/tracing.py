"""Span-based structured tracing with a context-manager API.

Tracing is **off by default** and compiles to a no-op: the module-level
enabled flag is a single global, and a disabled :func:`span` call
returns one shared :data:`NOOP_SPAN` whose ``__enter__``/``__exit__``/
``set`` do nothing — no clock reads, no allocation beyond the kwargs
dict at the call site.  The instrumented hot paths therefore cost one
predicate per *phase* (not per inner-loop iteration) when observability
is disabled; ``repro obs-bench`` measures the residual overhead.

When enabled, every ``with span("name", attr=...)`` block records a
:class:`Span` — name, start offset, duration, attributes, and its
parent via the tracer's stack — into the active :class:`Tracer`.
Spans nest naturally with the ``with`` nesting, so a traced
``CTIndex.build`` yields the per-phase breakdown (MDE, core labeling,
forest labeling, compaction) the labeling literature reports as a
first-class output.

Typical use::

    with capture() as tracer:
        index = repro.build(graph, bandwidth=16)
    write_trace(tracer.finished, "build.trace.jsonl")

Attributes set after the work are supported (the serving engine knows a
query's 4-case attribution only once the query returns)::

    with span("serving.query") as sp:
        value = index.distance(s, t)
        sp.set(case=case)

The tracer is single-process: multiprocess build workers
(:mod:`repro.parallel`) run pure functions and report through their
return values, so spans are recorded master-side around the fan-out.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager


@dataclasses.dataclass
class Span:
    """One finished traced operation."""

    name: str
    #: Start time, seconds since the tracer's epoch.
    start_s: float
    #: Wall-clock duration in seconds.
    duration_s: float
    #: User attributes (sizes, counts, case labels, ...).
    attrs: dict
    #: Tracer-unique id, in start order.
    span_id: int
    #: ``span_id`` of the enclosing span, or ``None`` at top level.
    parent_id: int | None

    def as_record(self) -> dict:
        """JSON-ready form (microsecond times, stable key order)."""
        return {
            "name": self.name,
            "start_us": round(self.start_s * 1e6, 3),
            "dur_us": round(self.duration_s * 1e6, 3),
            "id": self.span_id,
            "parent": self.parent_id,
            "attrs": self.attrs,
        }


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: The singleton handed out by :func:`span` when tracing is off.
NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_started")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes (inside or after the timed block)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.span_id)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ended = time.perf_counter()
        tracer = self._tracer
        tracer._stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        tracer.finished.append(
            Span(
                name=self.name,
                start_s=self._started - tracer.epoch,
                duration_s=ended - self._started,
                attrs=self.attrs,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        )
        return False


class Tracer:
    """Collects finished spans; one per enable()d trace session."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.finished: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 0

    def span(self, name: str, attrs: dict) -> _LiveSpan:
        return _LiveSpan(self, name, attrs)

    def records(self) -> list[dict]:
        """JSON-ready records of every finished span, in finish order."""
        return [span.as_record() for span in self.finished]


# ----------------------------------------------------------------------
# Module-level switch
# ----------------------------------------------------------------------

#: The active tracer, or ``None`` while tracing is disabled.
_TRACER: Tracer | None = None


def tracing_enabled() -> bool:
    """True while a tracer is installed."""
    return _TRACER is not None


def current_tracer() -> Tracer | None:
    """The installed tracer (``None`` when tracing is disabled)."""
    return _TRACER


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global _TRACER
    if tracer is None:
        tracer = Tracer()
    _TRACER = tracer
    return tracer


def disable_tracing() -> Tracer | None:
    """Uninstall and return the active tracer (with its spans)."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    return tracer


def span(name: str, **attrs):
    """A context manager timing one operation (no-op while disabled)."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, attrs)


@contextmanager
def capture(tracer: Tracer | None = None):
    """Enable tracing for one block, restoring the previous state after.

    Yields the :class:`Tracer`; read ``tracer.finished`` after the
    block::

        with capture() as tracer:
            repro.build(graph, bandwidth=8)
        phases = {s.name for s in tracer.finished}
    """
    global _TRACER
    previous = _TRACER
    installed = enable_tracing(tracer)
    try:
        yield installed
    finally:
        _TRACER = previous


__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "capture",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "span",
    "tracing_enabled",
]
