"""Vectorized CT-Index query kernels: the 4-case dispatch as array ops.

:class:`CTKernelState` is built lazily by
:class:`~repro.core.ct_index.CTIndex` when the numpy kernel resolves;
it holds the cached NumPy views of both label halves (core CSR 2-hop
labels, forest CSR tree labels) plus a per-position node-id array, and
answers the reduced-graph cases:

* **Case 1** (core-core) — one :func:`~repro.kernels.label_kernels.
  intersect_runs_min` over the two core runs;
* **Case 2** (tree-core) — like the scalar path, one short run
  intersection per reachable interface member (interfaces are small by
  construction — the bandwidth bounds them — so a member loop beats
  materializing an extension array);
* **Case 3** (cross-tree) — intersect *one* side's extension array
  (Lemma 9) against the other side's reachable interface runs.
  Algebraically identical to the scalar ``ext ∩ ext``: both minimize
  ``du + d(u, h) + d(h, v) + dv`` over the same (member, hub, member)
  operand set, and the arithmetic is exact for the integer distances
  every builder produces — but one whole extension computation per
  cold pair is skipped, and a warm LRU entry on either side is used as
  the extension side;
* **Case 4** (same-tree) — the better of the vectorized LCA-bag 2-hop
  (``d2``, one ``searchsorted`` per endpoint over the bag) and the
  extension intersection (``d4``).

The extension operation itself — the O(d)-way union that dominated the
scalar profile — becomes concatenate + stable argsort + segmented
``np.minimum.reduceat`` (with a no-sort fast path for the common
single-reachable-member interface), and its results (rank/dist array
pairs) live in the index's existing extension LRU.

Batch shapes reuse per-source state the way the scalar
``distances_from`` shares ``ext_s``, then go further: all core targets
of one source are answered by scattering the source's run (or extension
array) into one dense rank-indexed vector and min-reducing every target
run against it in a single ``reduceat`` pass.

Query-case counters are maintained exactly like the scalar path;
core-probe accounting follows the scalar semantics per case — Case 2
probes once per reachable interface member (as scalar does), Cases 3/4
probe once per reachable member whenever interface core runs are
scanned (the member loop and each extension computation), so a warm
extension LRU skips exactly the probes the scalar path's warm cache
skips.

Imports NumPy at module level — load only behind
:func:`repro.kernels.resolve_kernel`.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.graphs.graph import INF, Weight

_INF = float("inf")
from repro.kernels.label_kernels import (
    NumpyLabelKernel,
    intersect_runs_min,
    weight_from_float,
    weights_from_floats,
)
from repro.kernels.views import tree_views

#: Shared empty extension array pair (a position whose tree cannot
#: reach its interface).
_EMPTY_RANKS = np.empty(0, dtype=np.int64)
_EMPTY_DISTS = np.empty(0, dtype=np.float64)


class CTKernelState:
    """NumPy kernel state for one flat-backend :class:`CTIndex`."""

    name = "numpy"

    def __init__(self, index) -> None:
        self.index = index
        self.core = NumpyLabelKernel(index.core_index.labels)
        tree = tree_views(index.tree_index.labels)
        self._tree_offsets = tree.offsets
        self._tree_targets = tree.targets
        self._tree_dists = tree.dists_inf
        decomposition = index.decomposition
        self._node_at = np.fromiter(
            (decomposition.node_at(pos) for pos in range(len(tree.offsets) - 1)),
            dtype=np.int64,
            count=len(tree.offsets) - 1,
        )
        # Plain-python copies of the tree CSR arrays for the scalar
        # member loops: bisect over a list compares unboxed ints, which
        # beats both numpy-scalar indexing and the ``array.array``
        # store's boxing on the point-query hot path.
        self._tree_bounds = tree.offsets.tolist()
        self._tree_targets_list = tree.targets.tolist()
        self._tree_dists_list = tree.dists_inf.tolist()
        self._node_at_list = self._node_at.tolist()
        # Per-query dispatch state, bound once (the decomposition and
        # the reduced-to-compact core map are frozen for a built index).
        self._decomposition = decomposition
        self._position = decomposition.position
        self._core_compact = index._core_compact
        #: Whether both label halves hold integer distances — decides
        #: the answer type of the mixed (tree + core) cases.
        self.integral = self.core._integral and tree.integral

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def tree_distance(self, pos: int, target: int) -> float:
        """Scalar δ^T from ``pos`` to one node id (float, ``inf`` absent).

        Same contract as the tree index's ``local_distance`` (0 for the
        position's own node) but answered from the kernel's plain-list
        copies of the CSR arrays, so the member loops of Cases 2/3 pay
        one C-level bisect instead of two store method calls.
        """
        targets = self._tree_targets_list
        start, stop = self._tree_bounds[pos], self._tree_bounds[pos + 1]
        i = bisect_left(targets, target, start, stop)
        if i < stop and targets[i] == target:
            return self._tree_dists_list[i]
        return 0.0 if self._node_at_list[pos] == target else _INF

    def tree_lookup(self, pos: int, targets: np.ndarray) -> np.ndarray:
        """δ^T from ``pos`` to each target node id (float64, inf absent)."""
        start, stop = self._tree_offsets[pos], self._tree_offsets[pos + 1]
        run_targets = self._tree_targets[start:stop]
        run_dists = self._tree_dists[start:stop]
        if len(run_targets):
            slots = run_targets.searchsorted(targets)
            # mode="clip" clamps past-the-end slots onto the last entry,
            # which the equality test rejects (those targets exceed
            # every stored id).
            found = run_targets.take(slots, mode="clip") == targets
            out = np.where(found, run_dists.take(slots, mode="clip"), np.inf)
        else:
            out = np.full(len(targets), np.inf)
        out[targets == self._node_at[pos]] = 0.0
        return out

    def extension_arrays(self, pos: int) -> tuple[np.ndarray, np.ndarray]:
        """Lemma 9 extension set of ``pos`` as parallel sorted arrays.

        Returns ``(hub_ranks ascending-unique, extended_dists)`` — the
        array form of the scalar path's ``rank -> dist`` dict.  Bumps
        ``core_probes`` once per reachable interface member, matching
        ``_compute_extended_labels``.  Unreachable interface members
        contribute nothing (their runs are skipped outright), and the
        common small-interface case — exactly one reachable member —
        returns the member's shifted run with no sort at all: a single
        core run is already ascending-unique by store invariant.
        """
        index = self.index
        interface = self._decomposition.interface[self._decomposition.root[pos]]
        runs_ranks: list[np.ndarray] = []
        runs_dists: list[np.ndarray] = []
        tree_distance = self.tree_distance
        for u in interface:
            du = tree_distance(pos, u)
            if du == _INF:
                continue
            index.core_probes += 1
            ranks, dists = self.core.run(self._core_compact[u])
            runs_ranks.append(ranks)
            runs_dists.append(dists + du)
        if not runs_ranks:
            return _EMPTY_RANKS, _EMPTY_DISTS
        if len(runs_ranks) == 1:
            return runs_ranks[0], runs_dists[0]
        ranks = np.concatenate(runs_ranks)
        dists = np.concatenate(runs_dists)
        order = np.argsort(ranks, kind="stable")
        ranks = ranks[order]
        dists = dists[order]
        firsts = np.flatnonzero(
            np.concatenate(([True], ranks[1:] != ranks[:-1]))
        )
        return ranks[firsts], np.minimum.reduceat(dists, firsts)

    def extension_entry(self, pos: int) -> tuple[np.ndarray, np.ndarray]:
        """Extension arrays of ``pos`` through the index's LRU."""
        return self.index._extension_entry(pos, self.extension_arrays)

    def _dense_extension(self, pos: int) -> np.ndarray:
        """Extension set scattered into a core-rank-indexed float64 array."""
        ranks, dists = self.extension_entry(pos)
        dense = np.full(self.core._n, np.inf)
        dense[ranks] = dists
        return dense

    # ------------------------------------------------------------------
    # Point cases (reduced-graph node ids, s != t, distinct classes)
    # ------------------------------------------------------------------

    def reduced_distance(self, s: int, t: int) -> Weight:
        """Numpy twin of ``CTIndex._reduced_distance`` (same counters)."""
        index = self.index
        position = self._position
        pos_s = position[s]
        pos_t = position[t]
        if pos_s is None and pos_t is None:
            index.case_counts["case1"] += 1
            index.core_probes += 1
            compact = self._core_compact
            return self.core.query(compact[s], compact[t])
        if pos_s is None:
            s, t = t, s
            pos_s, pos_t = pos_t, pos_s
        if pos_t is None:
            index.case_counts["case2"] += 1
            return self.tree_to_core(pos_s, t)
        if self._decomposition.same_tree(pos_s, pos_t):
            index.case_counts["case4"] += 1
            return self.same_tree(pos_s, pos_t)
        index.case_counts["case3"] += 1
        return self.cross_tree(pos_s, pos_t)

    def tree_to_core(self, pos_s: int, t: int) -> Weight:
        """Case 2 exactly like the scalar path (``t`` is a reduced core id).

        One short run intersection per reachable interface member — no
        extension array is materialized, mirroring the scalar
        ``_tree_to_core`` (and its per-member ``core_probes``
        accounting) rather than the extension-based Cases 3/4.
        """
        index = self.index
        interface = self._decomposition.interface[self._decomposition.root[pos_s]]
        compact_t = self._core_compact[t]
        ranks_t, dists_t = self.core.run(compact_t)
        tree_distance = self.tree_distance
        best = np.inf
        for u in interface:
            du = tree_distance(pos_s, u)
            if du == _INF:
                continue
            index.core_probes += 1
            compact_u = self._core_compact[u]
            if compact_u == compact_t:
                total = du
            else:
                ranks_u, dists_u = self.core.run(compact_u)
                total = du + intersect_runs_min(
                    ranks_u, dists_u, ranks_t, dists_t
                )
            if total < best:
                best = total
        return weight_from_float(best, self.integral)

    def cross_tree(self, pos_s: int, pos_t: int) -> Weight:
        """Case 3 through one extension array instead of two.

        ``ext_s ∩ ext_t`` and ``min_u (δ^T(t,u) + (ext_s ∩ run(u)))``
        minimize over exactly the same ``du + d(u,h) + d(h,·)`` operand
        set, so intersecting the *other* side's reachable interface
        runs directly skips one whole extension computation per cold
        pair.  The cached side (when exactly one is resident in the
        extension LRU) is used as the extension so warm entries keep
        paying off; probes are bumped per reachable member on both
        sides, like the scalar path's two cold extension computes.
        """
        index = self.index
        cache = index._extension_cache
        if pos_s not in cache and pos_t in cache:
            pos_s, pos_t = pos_t, pos_s
        ranks_s, dists_s = self.extension_entry(pos_s)
        interface = self._decomposition.interface[self._decomposition.root[pos_t]]
        tree_distance = self.tree_distance
        best = np.inf
        for u in interface:
            du = tree_distance(pos_t, u)
            if du == _INF:
                continue
            index.core_probes += 1
            ranks_u, dists_u = self.core.run(self._core_compact[u])
            total = du + intersect_runs_min(
                ranks_s, dists_s, ranks_u, dists_u
            )
            if total < best:
                best = total
        return weight_from_float(best, self.integral)

    def same_tree(self, pos_s: int, pos_t: int) -> Weight:
        """Case 4: vectorized LCA-bag 2-hop vs extension intersection."""
        decomposition = self._decomposition
        meet = decomposition.lca(pos_s, pos_t)
        bag = np.asarray(decomposition.bag_members(meet), dtype=np.int64)
        if len(bag):
            d2 = (self.tree_lookup(pos_s, bag) + self.tree_lookup(pos_t, bag)).min()
        else:  # pragma: no cover - bags are never empty in a valid index
            d2 = np.inf
        ranks_s, dists_s = self.extension_entry(pos_s)
        ranks_t, dists_t = self.extension_entry(pos_t)
        d4 = intersect_runs_min(ranks_s, dists_s, ranks_t, dists_t)
        return weight_from_float(min(d2, d4), self.integral)

    # ------------------------------------------------------------------
    # Batch shapes (original-graph node ids, pre-validated bounds)
    # ------------------------------------------------------------------

    def distances_from(self, s: int, targets: list[int]) -> list[Weight]:
        """One-to-many: one dense scatter per source, grouped reductions."""
        index = self.index
        reduction = index.reduction
        position = index.decomposition.position
        rs = reduction.representative[s]
        pos_s = position[rs]
        results: list[Weight] = [0] * len(targets)
        core_slots: list[int] = []
        core_nodes: list[int] = []
        forest_slots: list[int] = []
        forest_positions: list[int] = []
        for i, t in enumerate(targets):
            if t == s:
                continue
            rt = reduction.representative[t]
            if rt == rs:
                results[i] = reduction.class_distance(s, t)
                continue
            pos_t = position[rt]
            if pos_t is None:
                core_slots.append(i)
                core_nodes.append(rt)
            else:
                forest_slots.append(i)
                forest_positions.append(pos_t)

        if core_slots:
            compact = index._core_compact
            compact_targets = [compact[rt] for rt in core_nodes]
            if pos_s is None:
                # Case 1 en masse: source core run scattered once.
                index.case_counts["case1"] += len(core_slots)
                index.core_probes += len(core_slots)
                dense = self.core.dense_run(compact[rs])
                integral = self.core._integral
            else:
                # Case 2 en masse: extension array scattered once.
                index.case_counts["case2"] += len(core_slots)
                dense = self._dense_extension(pos_s)
                integral = self.integral
            mins = self.core.min_against_dense(dense, compact_targets)
            for slot, value in zip(core_slots, weights_from_floats(mins, integral)):
                results[slot] = value

        for slot, pos_t in zip(forest_slots, forest_positions):
            if pos_s is None:
                # Core source, forest target: Case 2 with roles swapped.
                index.case_counts["case2"] += 1
                results[slot] = self.tree_to_core(pos_t, rs)
            elif index.decomposition.same_tree(pos_s, pos_t):
                index.case_counts["case4"] += 1
                results[slot] = self.same_tree(pos_s, pos_t)
            else:
                index.case_counts["case3"] += 1
                results[slot] = self.cross_tree(pos_s, pos_t)
        return results

    def distances_batch(self, pairs: list[tuple[int, int]]) -> list[Weight]:
        """Pairwise batch, grouped by source to reuse per-source state."""
        results: list[Weight] = [0] * len(pairs)
        by_source: dict[int, list[int]] = {}
        for i, (s, _t) in enumerate(pairs):
            by_source.setdefault(s, []).append(i)
        for s, slots in by_source.items():
            answers = self.distances_from(s, [pairs[i][1] for i in slots])
            for slot, answer in zip(slots, answers):
                results[slot] = answer
        return results


__all__ = ["CTKernelState"]
