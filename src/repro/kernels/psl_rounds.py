"""NumPy-vectorized PSL round propagation (construction kernel).

This is the construction-side counterpart of the query kernels: one PSL
round — candidate generation from the neighbors' previous-round hubs,
pruning against the committed labels, and the synchronous commit — as a
handful of array operations over CSR state instead of per-vertex dict
scans.

The state is three parallel structures, all keyed by the composite
``owner * n + hub_rank`` (``int64``; owner-major, hub-minor, so the
concatenation of per-node rank-sorted labels is globally sorted):

* ``lab_keys`` / ``lab_dists`` — every committed label entry, sorted;
* ``lab_indptr`` — CSR offsets of each owner's run inside those arrays;
* the frontier (``fr_indptr`` / ``fr_hubs``) — hubs committed in the
  previous round, per node.

Each round

1. gathers, per directed edge ``(v, u)``, the frontier hubs of ``u``
   (a variable-run gather: ``repeat`` + ``cumsum`` offsets),
2. keeps candidates ranked above their owner and deduplicates them with
   a sort + adjacent-difference mask over composite keys,
3. drops candidates already committed (``np.searchsorted`` membership
   against ``lab_keys``),
4. runs the pruning test smaller-side, mirroring
   :func:`repro.labeling.psl._map_query`'s iterate-the-smaller-map
   rule: each candidate ``(v, h)`` expands whichever of ``L(v)`` /
   ``L(w_h)`` is shorter while the other side sits scattered in a dense
   rank-indexed buffer.  Candidates are split into two batches by which
   side is smaller, each batch is grouped so candidates sharing a
   scatter node are contiguous, and the expansion streams through
   fixed-size scratch buffers (``_Scratch``) in bounded chunks — one
   ``np.minimum.reduceat`` per chunk reduces each run.  A candidate
   survives when the best 2-hop cover through already-committed labels
   is longer than the current level.  The chunking matters as much as
   the work split: a single flat expansion materializes hundreds of
   millions of elements at the peak round, and freshly faulted pages
   cost more than the arithmetic,
5. commits all survivors at once (sorted merge into the label arrays)
   and charges the memory budget in ascending-owner order, mirroring
   the serial commit's charge sequence.

Every round commits the identical label set the pure-Python rounds
commit — the level-synchronous semantics only ever consult labels of
strictly earlier rounds, which both paths enforce — so the resulting
index is byte-for-byte the serial one (``index_fingerprint()``-equal,
pinned by the differential suite).
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs.graph import Graph
from repro.labeling.base import MemoryBudget
from repro.obs.tracing import span as obs_span, tracing_enabled

#: Dense-buffer sentinel: far above any achievable level sum, far below
#: int64 overflow when two of them are added.
_INF = np.int64(1) << np.int64(50)

#: Pruning-test chunk size, in expanded label entries.  Each chunk
#: streams through three reused ``_Scratch`` buffers of this many
#: int64s; keeping them warm (instead of faulting fresh multi-GB
#: expansions every round) is what makes the peak rounds affordable.
_PRUNE_CHUNK = 1 << 19


class _Scratch:
    """Reusable chunk buffers for the pruning-test expansion."""

    __slots__ = ("cap", "idx", "z_ranks", "sums")

    def __init__(self) -> None:
        self.cap = 0
        self.ensure(_PRUNE_CHUNK)

    def ensure(self, max_run: int) -> int:
        """Grow to hold ``max_run`` elements; returns the chunk capacity.

        A chunk always admits at least one candidate, so the buffers
        must fit the longest single label run even when it exceeds the
        nominal chunk size.
        """
        need = max(_PRUNE_CHUNK, int(max_run))
        if need > self.cap:
            self.cap = need
            self.idx = np.empty(need, dtype=np.int64)
            self.z_ranks = np.empty(need, dtype=np.int64)
            self.sums = np.empty(need, dtype=np.int64)
        return self.cap


def build_csr_adjacency(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of ``graph`` — ``(adj_indptr, adj)``, both int64.

    One row per node, every edge stored in both directions.  The row of
    destination vertex ``v`` spans ``adj[adj_indptr[v]:adj_indptr[v+1]]``,
    so any contiguous destination-vertex range maps to one contiguous
    edge slice — the property the shared-memory fan-out partitions on.
    """
    n = graph.n
    degrees = np.fromiter(
        (len(graph.neighbor_ids(v)) for v in range(n)), dtype=np.int64, count=n
    )
    adj_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=adj_indptr[1:])
    adj = np.fromiter(
        (u for v in range(n) for u in graph.neighbor_ids(v)),
        dtype=np.int64,
        count=int(adj_indptr[-1]),
    )
    return adj_indptr, adj


def edge_owners(adj_indptr: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Destination vertex per edge of rows ``lo .. hi-1`` (absolute ids)."""
    counts = np.diff(adj_indptr[lo : hi + 1])
    return np.repeat(np.arange(lo, hi, dtype=np.int64), counts)


def init_label_state(
    rank_arr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Level-0 state: every node's self-entry, committed and on the frontier.

    Returns ``(lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs)``.
    """
    n = rank_arr.size
    n64 = np.int64(n)
    lab_keys = np.arange(n, dtype=np.int64) * n64 + rank_arr
    lab_dists = np.zeros(n, dtype=np.int64)
    lab_indptr = np.arange(n + 1, dtype=np.int64)
    fr_indptr = np.arange(n + 1, dtype=np.int64)
    fr_hubs = rank_arr.copy()
    return lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs


def commit_level(
    n: int,
    lab_keys: np.ndarray,
    lab_dists: np.ndarray,
    accepted_keys: np.ndarray,
    level: int,
    *,
    budget: MemoryBudget,
    budget_exempt: frozenset[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Synchronous commit: merge one round's accepted keys into the labels.

    ``accepted_keys`` must be the sorted accepted set of the whole
    vertex range — either one in-process round's output or the
    rank-order concatenation of per-range worker outputs (ascending
    contiguous ranges concatenate to the identical sorted array, which
    is the determinism argument of :mod:`repro.parallel.shm`).  Charges
    ``budget`` in the serial commit's ascending-node order and returns
    the new ``(lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs)``.
    """
    n64 = np.int64(n)
    merged_keys = np.concatenate([lab_keys, accepted_keys])
    merged_dists = np.concatenate(
        [lab_dists, np.full(accepted_keys.size, level, dtype=np.int64)]
    )
    sort_idx = np.argsort(merged_keys, kind="stable")
    lab_keys = merged_keys[sort_idx]
    lab_dists = merged_dists[sort_idx]
    owner_counts = np.bincount(lab_keys // n64, minlength=n)
    lab_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(owner_counts, out=lab_indptr[1:])

    # Next round's frontier is exactly what was committed now.
    accepted_owners = accepted_keys // n64
    fr_hubs = accepted_keys % n64
    fr_counts = np.bincount(accepted_owners, minlength=n)
    fr_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(fr_counts, out=fr_indptr[1:])

    # Budget accounting, in the serial commit's ascending-node order.
    charge_owners, charge_counts = np.unique(accepted_owners, return_counts=True)
    for v, count in zip(charge_owners.tolist(), charge_counts.tolist()):
        if v not in budget_exempt:
            budget.charge(count)
    return lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs


def labels_to_lists(
    n: int,
    lab_keys: np.ndarray,
    lab_dists: np.ndarray,
    lab_indptr: np.ndarray,
) -> tuple[list[list[int]], list[list[int]]]:
    """Unpack the committed CSR state into per-node Python lists."""
    hubs = (lab_keys % np.int64(n)).tolist()
    dists = lab_dists.tolist()
    indptr = lab_indptr.tolist()
    hub_ranks = [hubs[indptr[v] : indptr[v + 1]] for v in range(n)]
    hub_dists = [dists[indptr[v] : indptr[v + 1]] for v in range(n)]
    return hub_ranks, hub_dists


def record_round_stats(
    stats_out: dict | None, level: int, kernel_s: float, merge_s: float, additions: int
) -> None:
    """Accumulate one round's kernel/merge time split into ``stats_out``.

    Shared by the in-process loop and the shared-memory fan-out so
    ``BENCH_scale.json`` reports the same shape either way; ``None``
    disables collection (the production default).
    """
    if stats_out is None:
        return
    stats_out["rounds"] = level
    stats_out["kernel_s"] = stats_out.get("kernel_s", 0.0) + kernel_s
    stats_out["merge_s"] = stats_out.get("merge_s", 0.0) + merge_s
    stats_out.setdefault("levels", []).append(
        {
            "level": level,
            "kernel_s": round(kernel_s, 4),
            "merge_s": round(merge_s, 4),
            "additions": additions,
        }
    )


def run_numpy_rounds(
    graph: Graph,
    rank: list[int],
    order: list[int],
    *,
    budget: MemoryBudget,
    budget_exempt: frozenset[int],
    stats_out: dict | None = None,
) -> tuple[list[list[int]], list[list[int]], int]:
    """Run every PSL round vectorized; returns the finished labels.

    Returns ``(hub_ranks, hub_dists, rounds)`` where ``hub_ranks[v]`` /
    ``hub_dists[v]`` are ``v``'s committed label entries in ascending
    rank order (plain Python ints, ready for
    :meth:`~repro.labeling.hub_labels.HubLabeling.append_entry`) and
    ``rounds`` is the number of levels evaluated, matching the serial
    loop's count (the final, empty level included).

    The initial self-labels must already be charged to ``budget`` by the
    caller (both construction paths share that init).  ``stats_out``
    (optional dict) collects the per-round kernel/merge time split — see
    :func:`record_round_stats`.
    """
    lab_keys, lab_dists, lab_indptr, level = run_numpy_rounds_csr(
        graph,
        rank,
        order,
        budget=budget,
        budget_exempt=budget_exempt,
        stats_out=stats_out,
    )
    hub_ranks, hub_dists = labels_to_lists(graph.n, lab_keys, lab_dists, lab_indptr)
    return hub_ranks, hub_dists, level


def run_numpy_rounds_csr(
    graph: Graph,
    rank: list[int],
    order: list[int],
    *,
    budget: MemoryBudget,
    budget_exempt: frozenset[int],
    stats_out: dict | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Like :func:`run_numpy_rounds` but returns the raw CSR state.

    ``(lab_keys, lab_dists, lab_indptr, rounds)`` — composite keys
    sorted owner-major, so ``lab_keys % n`` is each node's ascending
    hub-rank run.  The flat backend adopts these arrays directly
    (:meth:`~repro.storage.flat_labels.FlatLabelStore.adopt_numpy_csr`)
    without a per-entry Python loop.
    """
    n = graph.n
    n64 = np.int64(n)

    adj_indptr, adj = build_csr_adjacency(graph)
    edge_owner = edge_owners(adj_indptr, 0, n)

    rank_arr = np.asarray(rank, dtype=np.int64)
    order_arr = np.asarray(order, dtype=np.int64)
    lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs = init_label_state(rank_arr)

    dist_buf = np.full(n, _INF, dtype=np.int64)
    scratch = _Scratch()

    level = 0
    while True:
        level += 1
        with obs_span("labeling.psl.level", level=level) as level_span:
            kernel_started = time.perf_counter()
            accepted_keys = _run_round(
                n64,
                adj,
                edge_owner,
                rank_arr,
                order_arr,
                lab_keys,
                lab_dists,
                lab_indptr,
                fr_indptr,
                fr_hubs,
                dist_buf,
                scratch,
                level,
            )
            kernel_seconds = time.perf_counter() - kernel_started
            if tracing_enabled():
                level_span.set(additions=int(accepted_keys.size))
        if accepted_keys.size == 0:
            record_round_stats(stats_out, level, kernel_seconds, 0.0, 0)
            break

        merge_started = time.perf_counter()
        lab_keys, lab_dists, lab_indptr, fr_indptr, fr_hubs = commit_level(
            n,
            lab_keys,
            lab_dists,
            accepted_keys,
            level,
            budget=budget,
            budget_exempt=budget_exempt,
        )
        record_round_stats(
            stats_out,
            level,
            kernel_seconds,
            time.perf_counter() - merge_started,
            int(accepted_keys.size),
        )

    return lab_keys, lab_dists, lab_indptr, level


def _expand_runs(
    starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Indices of the concatenation of ``counts[i]``-long runs at ``starts[i]``.

    Returns ``(indices, run_offsets)``: ``indices`` gathers every run
    element in order, ``run_offsets`` marks where each run begins in it
    (the ``reduceat`` boundaries).
    """
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    total = int(offsets[-1] + counts[-1]) if counts.size else 0
    indices = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
    return indices, offsets


def _run_round(
    n64: np.int64,
    adj: np.ndarray,
    edge_owner: np.ndarray,
    rank_arr: np.ndarray,
    order_arr: np.ndarray,
    lab_keys: np.ndarray,
    lab_dists: np.ndarray,
    lab_indptr: np.ndarray,
    fr_indptr: np.ndarray,
    fr_hubs: np.ndarray,
    dist_buf: np.ndarray,
    scratch: _Scratch,
    level: int,
) -> np.ndarray:
    """One round's gather + prune; returns the accepted composite keys."""
    # 1. Candidate gather: frontier hubs of every neighbor.
    fr_counts = np.diff(fr_indptr)
    edge_counts = fr_counts[adj]
    if int(edge_counts.sum()) == 0:
        return np.empty(0, dtype=np.int64)
    nonzero = edge_counts > 0
    indices, _ = _expand_runs(fr_indptr[adj[nonzero]], edge_counts[nonzero])
    hubs = fr_hubs[indices]
    owners = np.repeat(edge_owner[nonzero], edge_counts[nonzero])

    # 2. Rank filter + dedup (sort + adjacent-difference mask; cheaper
    # than np.unique's hashing on these already-dense keys).
    keep = hubs < rank_arr[owners]
    if not keep.any():
        return np.empty(0, dtype=np.int64)
    keys = owners[keep] * n64 + hubs[keep]
    keys.sort(kind="stable")
    first = np.empty(keys.size, dtype=bool)
    first[0] = True
    np.not_equal(keys[1:], keys[:-1], out=first[1:])
    keys = keys[first]

    # 3. Drop candidates already committed at a smaller level.
    pos = np.searchsorted(lab_keys, keys)
    pos_clipped = np.minimum(pos, lab_keys.size - 1)
    keys = keys[lab_keys[pos_clipped] != keys]
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    owners = keys // n64
    hubs = keys % n64

    # 4. Pruning test, smaller-side (the vectorized _map_query): each
    # candidate (v, h) expands the shorter of L(v) / L(w) and looks the
    # other side up in the dense rank-indexed buffer.  Split by which
    # side is shorter; batch A groups by owner (candidates are already
    # owner-sorted — sorted composite keys are owner-major), batch B
    # re-sorts by hub so candidates sharing a hub are contiguous.
    w_nodes = order_arr[hubs]
    lab_counts = np.diff(lab_indptr)
    own_runs = lab_counts[owners]
    hub_runs = lab_counts[w_nodes]
    hub_smaller = hub_runs <= own_runs
    accept = np.empty(keys.size, dtype=bool)

    sel = np.flatnonzero(hub_smaller)
    if sel.size:
        _prune_batch(
            lab_keys,
            lab_dists,
            lab_indptr,
            dist_buf,
            scratch,
            n64,
            level,
            expand_nodes=w_nodes[sel],
            group_nodes=owners[sel],
            accept=accept,
            accept_idx=sel,
        )
    sel = np.flatnonzero(~hub_smaller)
    if sel.size:
        by_hub = sel[np.argsort(hubs[sel], kind="stable")]
        _prune_batch(
            lab_keys,
            lab_dists,
            lab_indptr,
            dist_buf,
            scratch,
            n64,
            level,
            expand_nodes=owners[by_hub],
            group_nodes=w_nodes[by_hub],
            accept=accept,
            accept_idx=by_hub,
        )
    return keys[accept]


def _prune_batch(
    lab_keys: np.ndarray,
    lab_dists: np.ndarray,
    lab_indptr: np.ndarray,
    dist_buf: np.ndarray,
    scratch: _Scratch,
    n64: np.int64,
    level: int,
    *,
    expand_nodes: np.ndarray,
    group_nodes: np.ndarray,
    accept: np.ndarray,
    accept_idx: np.ndarray,
) -> None:
    """Pruning test for one batch of candidates.

    ``expand_nodes[i]``'s label run is expanded, ``group_nodes[i]``'s
    label sits in the dense buffer; candidates must arrive with equal
    ``group_nodes`` contiguous.  Writes ``accept[accept_idx[i]]`` (True
    = survives, no 2-hop cover at <= level).  Work is streamed through
    ``scratch`` in bounded chunks — candidate ``i``'s expansion is the
    contiguous committed run ``lab_indptr[e]:lab_indptr[e+1]``, so each
    chunk's gather indices are a grouped arange built in-place.
    """
    m = expand_nodes.size
    starts = lab_indptr[expand_nodes]
    runs = lab_indptr[expand_nodes + 1] - starts
    bounds = np.empty(m + 1, dtype=np.int64)
    bounds[0] = 0
    np.cumsum(runs, out=bounds[1:])
    cap = scratch.ensure(int(runs.max()))

    a = 0
    while a < m:
        b = int(np.searchsorted(bounds, bounds[a] + cap, side="right")) - 1
        if b <= a:
            b = a + 1  # one oversized run; scratch already fits it
        tot = int(bounds[b] - bounds[a])
        offs = bounds[a:b] - bounds[a]

        # Grouped arange: idx = concat(arange(starts[i], starts[i]+runs[i])).
        idx = scratch.idx[:tot]
        idx[:] = 1
        idx[0] = starts[a]
        if b - a > 1:
            idx[offs[1:]] = starts[a + 1 : b] - (starts[a : b - 1] + runs[a : b - 1]) + 1
        np.cumsum(idx, out=idx)

        z_ranks = scratch.z_ranks[:tot]
        np.take(lab_keys, idx, out=z_ranks)
        np.remainder(z_ranks, n64, out=z_ranks)
        sums = scratch.sums[:tot]
        np.take(lab_dists, idx, out=sums)

        # Per scatter-node segment: load its label into the dense
        # buffer, add the buffer lookups in place, then clear.
        chunk_groups = group_nodes[a:b]
        g_starts = np.flatnonzero(
            np.concatenate([[True], chunk_groups[1:] != chunk_groups[:-1]])
        )
        elem_bounds = np.concatenate([offs[g_starts], [tot]]).tolist()
        for g, u in enumerate(chunk_groups[g_starts].tolist()):
            u_lo = lab_indptr[u]
            u_hi = lab_indptr[u + 1]
            u_ranks = lab_keys[u_lo:u_hi] % n64
            dist_buf[u_ranks] = lab_dists[u_lo:u_hi]
            segment = slice(elem_bounds[g], elem_bounds[g + 1])
            sums[segment] += dist_buf[z_ranks[segment]]
            dist_buf[u_ranks] = _INF

        # Runs are never empty (every label holds its self-entry), so
        # offs is strictly increasing and reduceat is exact.
        best = np.minimum.reduceat(sums, offs)
        accept[accept_idx[a:b]] = best > level
        a = b
