"""Zero-copy NumPy views onto the CSR flat stores.

``array.array`` exposes the buffer protocol, so ``np.frombuffer`` wraps
the store's typed arrays without copying a byte.  The resulting views
are marked read-only (the stores are immutable; the kernels must never
become a mutation path) and cached on the store itself — building them
once per store, not per query.

Two widenings are the only copies this module ever makes, both done
once at view-build time and only when needed:

* distance arrays narrower than 8 bytes (a v4 binary snapshot stores
  the narrowest sufficient typecode) are upcast to ``int64`` so kernel
  sums cannot overflow the storage width;
* integer tree-label distances are also materialized as ``float64``
  with the ``-1`` INF sentinel decoded to ``inf``, which lets the
  same-tree (d2) kernel min-combine runs without branching on the
  sentinel.

This module imports NumPy at module level; only import it after
:func:`repro.kernels.resolve_kernel` has selected the numpy kernel.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.storage.flat_labels import FlatLabelStore
from repro.storage.flat_tree import INF_SENTINEL, FlatTreeLabelStore

#: ``array`` typecodes describing float layouts (everything else stored
#: by the flat backend is an integer family).
FLOAT_TYPECODES = ("f", "d")


def as_ndarray(values) -> np.ndarray:
    """Read-only zero-copy view of one typed buffer.

    Accepts anything the flat stores hold: ``array.array`` (the
    builders' layout) or a :class:`~repro.storage.mapped.MappedArray`
    view over an mmap-loaded snapshot — the latter exposes its typed
    ``memoryview`` as ``.raw``, so the resulting ndarray reads the
    mapped file's pages directly (still zero copies between disk and
    kernel).
    """
    buffer = getattr(values, "raw", values)
    view = np.frombuffer(buffer, dtype=np.dtype(values.typecode))
    if view.flags.writeable:
        view.flags.writeable = False
    return view


def _widened(view: np.ndarray, values: array) -> np.ndarray:
    """``view`` upcast so pairwise sums cannot overflow; no-op when wide.

    Integer distances widen to ``int64``, floats to ``float64`` —
    8-byte stores (the builders' native layout) come back unchanged,
    so the common case stays zero-copy.
    """
    wide = np.float64 if values.typecode in FLOAT_TYPECODES else np.int64
    if view.dtype == wide:
        return view
    return view.astype(wide)


class LabelViews:
    """NumPy views over one :class:`FlatLabelStore`'s CSR arrays."""

    __slots__ = ("offsets", "ranks", "dists", "integral", "n")

    def __init__(self, store: FlatLabelStore) -> None:
        order, offsets, hub_ranks, hub_dists = store.csr_arrays()
        self.offsets = as_ndarray(offsets)
        self.ranks = as_ndarray(hub_ranks)
        self.dists = _widened(as_ndarray(hub_dists), hub_dists)
        self.integral = hub_dists.typecode not in FLOAT_TYPECODES
        self.n = len(order)


class TreeViews:
    """NumPy views over one :class:`FlatTreeLabelStore`'s CSR arrays.

    ``dists_inf`` is the float64 working array with the integer INF
    sentinel decoded to ``np.inf`` — the form every tree kernel reads.
    """

    __slots__ = ("offsets", "targets", "dists_inf", "integral")

    def __init__(self, store: FlatTreeLabelStore) -> None:
        offsets, targets, dists = store.csr_arrays()
        self.offsets = as_ndarray(offsets)
        self.targets = as_ndarray(targets)
        self.integral = dists.typecode not in FLOAT_TYPECODES
        raw = as_ndarray(dists)
        decoded = raw.astype(np.float64)
        if self.integral:
            decoded[raw == INF_SENTINEL] = np.inf
        decoded.flags.writeable = False
        self.dists_inf = decoded


def label_views(store: FlatLabelStore) -> LabelViews:
    """The (lazily built, store-cached) views of a flat label store."""
    views = store._views
    if views is None:
        views = store._views = LabelViews(store)
    return views


def tree_views(store: FlatTreeLabelStore) -> TreeViews:
    """The (lazily built, store-cached) views of a flat tree store."""
    views = store._views
    if views is None:
        views = store._views = TreeViews(store)
    return views


__all__ = [
    "FLOAT_TYPECODES",
    "LabelViews",
    "TreeViews",
    "as_ndarray",
    "label_views",
    "tree_views",
]
