"""Vectorized 2-hop label kernels over one flat CSR store.

The scalar flat-backend query walks both rank runs with a two-pointer
merge in interpreter bytecode; :class:`NumpyLabelKernel` replaces that
with ``np.searchsorted`` over the shorter run (the runs are ascending
in hub rank by store invariant), and answers the batch shapes —
``distances_from`` / ``distances_batch`` — by scattering the source run
into a dense rank-indexed array once and min-reducing every target run
against it with ``np.minimum.reduceat``.

Answer identity with the scalar path is structural: both paths take
``min`` over exactly the same ``d_s + d_t`` operand pairs (the shared
hub ranks), and ``min`` is exact in both int64 and float64, so even
float workloads cannot diverge.  Results are converted back to plain
Python ints/floats (``INF`` for unreachable) so they compare and
serialize identically to scalar answers.

Imports NumPy at module level — load only behind
:func:`repro.kernels.resolve_kernel`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import INF, Weight
from repro.kernels.views import label_views
from repro.storage.flat_labels import FlatLabelStore


def intersect_runs_min(
    ranks_a: np.ndarray,
    dists_a: np.ndarray,
    ranks_b: np.ndarray,
    dists_b: np.ndarray,
) -> float:
    """``min(d_a + d_b)`` over shared ranks of two ascending runs.

    Returns ``np.inf`` when the runs share no rank.  Binary-searches
    the shorter run into the longer one — O(min·log max) comparisons,
    all in C.  The point-query hot path lives here, so the body is
    exactly seven array-method calls: ``take(mode="clip")`` clamps
    past-the-end search slots onto the last entry, which the equality
    test rejects (a rank beyond the run is strictly greater than every
    stored rank), and the unmatched slots are masked to ``inf`` by
    ``where`` before one ``minimum.reduce``.
    """
    if not len(ranks_a) or not len(ranks_b):
        return np.inf
    if len(ranks_a) > len(ranks_b):
        ranks_a, dists_a, ranks_b, dists_b = ranks_b, dists_b, ranks_a, dists_a
    positions = ranks_b.searchsorted(ranks_a)
    hit = ranks_b.take(positions, mode="clip") == ranks_a
    totals = dists_a + dists_b.take(positions, mode="clip")
    return np.minimum.reduce(np.where(hit, totals, np.inf))


def grouped_min_plus(
    dense: np.ndarray,
    ranks: np.ndarray,
    dists: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Per-run ``min(dense[rank] + dist)`` for many CSR runs at once.

    ``starts``/``lengths`` delimit one run per output slot inside the
    shared ``ranks``/``dists`` arrays; ``dense`` is a rank-indexed
    float64 array (``inf`` marks absent hubs).  Gathers every run into
    one concatenated index vector (the ``arange + repeat`` CSR trick)
    and min-reduces each segment with ``np.minimum.reduceat`` — no
    Python-level per-run loop.
    """
    out = np.full(len(starts), np.inf)
    nonzero = lengths > 0
    if not nonzero.any():
        return out
    run_starts = starts[nonzero].astype(np.int64)
    run_lengths = lengths[nonzero].astype(np.int64)
    total = int(run_lengths.sum())
    segment_bounds = np.concatenate(([0], np.cumsum(run_lengths)[:-1]))
    gather = np.arange(total, dtype=np.int64)
    gather += np.repeat(run_starts - segment_bounds, run_lengths)
    totals = dense[ranks[gather]] + dists[gather]
    out[nonzero] = np.minimum.reduceat(totals, segment_bounds)
    return out


def weights_from_floats(values, integral: bool) -> list[Weight]:
    """Convert kernel float results back to scalar-path answer types.

    ``inf`` becomes :data:`INF`; finite values become plain ``int``
    when the store is integral (float sums of exact int64 operands are
    themselves exact) and plain ``float`` otherwise.
    """
    values = np.asarray(values, dtype=np.float64).tolist()
    if integral:
        return [INF if value == INF else int(value) for value in values]
    return values


def weight_from_float(value, integral: bool) -> Weight:
    """Scalar form of :func:`weights_from_floats`."""
    value = float(value)
    if value == INF:
        return INF
    return int(value) if integral else value


class NumpyLabelKernel:
    """Vectorized query front-end over one :class:`FlatLabelStore`.

    Holds the store's cached views plus nothing else; building one is
    cheap and never mutates the store.  All entry points return plain
    Python weights identical to the scalar path's.
    """

    name = "numpy"

    def __init__(self, store: FlatLabelStore) -> None:
        self.store = store
        views = label_views(store)
        self._offsets = views.offsets
        # Plain-int copy of the offsets: scalar CSR bounds lookups and
        # the slices they feed are measurably faster with Python ints
        # than with numpy scalars on the point-query hot path.
        self._bounds = views.offsets.tolist()
        self._ranks = views.ranks
        self._dists = views.dists
        self._integral = views.integral
        self._n = views.n

    def run(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Node ``v``'s (ranks, dists) run as array views."""
        bounds = self._bounds
        start, stop = bounds[v], bounds[v + 1]
        return self._ranks[start:stop], self._dists[start:stop]

    def query(self, s: int, t: int) -> Weight:
        """Point 2-hop query (same contract as ``FlatLabelStore.query``)."""
        if s == t:
            return 0
        ranks_s, dists_s = self.run(s)
        ranks_t, dists_t = self.run(t)
        best = intersect_runs_min(ranks_s, dists_s, ranks_t, dists_t)
        return weight_from_float(best, self._integral)

    def dense_run(self, v: int) -> np.ndarray:
        """Node ``v``'s run scattered into a rank-indexed float64 array."""
        dense = np.full(self._n, np.inf)
        ranks, dists = self.run(v)
        dense[ranks] = dists
        return dense

    def min_against_dense(self, dense: np.ndarray, nodes) -> np.ndarray:
        """``min(dense[rank] + dist)`` over each node's run (float64)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        starts = self._offsets[nodes]
        lengths = self._offsets[nodes + 1] - starts
        return grouped_min_plus(dense, self._ranks, self._dists, starts, lengths)

    def query_from(self, s: int, targets) -> list[Weight]:
        """One-to-many batch: scatter ``s`` once, reduce every target run."""
        targets = list(targets)
        if not targets:
            return []
        dense = self.dense_run(s)
        mins = self.min_against_dense(dense, targets)
        results = weights_from_floats(mins, self._integral)
        for i, t in enumerate(targets):
            if t == s:
                results[i] = 0
        return results

    def query_batch(self, pairs) -> list[Weight]:
        """Pairwise batch, grouped by source to reuse the dense scatter."""
        pairs = list(pairs)
        results: list[Weight] = [INF] * len(pairs)
        by_source: dict[int, list[int]] = {}
        for i, (s, _t) in enumerate(pairs):
            by_source.setdefault(s, []).append(i)
        for s, slots in by_source.items():
            answers = self.query_from(s, [pairs[i][1] for i in slots])
            for slot, answer in zip(slots, answers):
                results[slot] = answer
        return results


__all__ = [
    "NumpyLabelKernel",
    "grouped_min_plus",
    "intersect_runs_min",
    "weight_from_float",
    "weights_from_floats",
]
