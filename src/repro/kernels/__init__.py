"""Vectorized query kernels over the CSR flat backend (experimental tier).

The flat backend of :mod:`repro.storage` packs labels into contiguous
typed arrays — exactly the layout NumPy can view zero-copy and reduce
in a handful of array ops.  This package holds those kernels:

* :mod:`repro.kernels.views` — cached ``np.frombuffer`` views onto
  :class:`~repro.storage.flat_labels.FlatLabelStore` /
  :class:`~repro.storage.flat_tree.FlatTreeLabelStore`;
* :mod:`repro.kernels.label_kernels` — point and batch 2-hop
  intersections over one flat label store;
* :mod:`repro.kernels.ct_kernels` — the CT-Index 4-case dispatch,
  including the Lemma 9 extension operation as array reductions.

NumPy stays **optional**: this module imports without it, and the
submodules above (which do ``import numpy``) are only loaded once
:func:`resolve_kernel` has decided the numpy kernel applies.  Kernel
selection is explicit everywhere it is wired through
(``kernel="numpy" | "python" | "auto"``):

* ``"python"`` — always the interpreter kernels (works on any backend);
* ``"numpy"`` — require the vectorized kernels; raises
  :class:`~repro.exceptions.ConfigurationError` when NumPy is missing
  (install the ``repro[fast]`` extra) or the index is not on the flat
  backend (the kernels read CSR arrays);
* ``"auto"`` (default) — numpy when available *and* the backend is
  flat, silently falling back to python otherwise.

Every kernel is answer-identical to the scalar path — the differential
suite pins this — so selection is purely a performance choice.
"""

from __future__ import annotations

import repro.obs as _obs
from repro.exceptions import ConfigurationError

#: Kernel spellings accepted by every ``kernel=`` argument.
KERNEL_AUTO = "auto"
KERNEL_NUMPY = "numpy"
KERNEL_PYTHON = "python"
KERNEL_NAMES = (KERNEL_AUTO, KERNEL_NUMPY, KERNEL_PYTHON)

#: The optional extra that brings NumPy in (named in error messages).
FAST_EXTRA = "repro[fast]"

#: Cached availability probe result (None = not probed yet).  Tests
#: monkeypatch this to simulate a NumPy-less environment.
_NUMPY_STATE: bool | None = None


def numpy_available() -> bool:
    """True when ``import numpy`` succeeds (probed once, then cached)."""
    global _NUMPY_STATE
    if _NUMPY_STATE is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_STATE = True
        except ImportError:
            _NUMPY_STATE = False
    return _NUMPY_STATE


def validate_kernel(kernel: str) -> str:
    """Check a ``kernel=`` argument, returning it unchanged.

    Raises :class:`ConfigurationError` on anything but ``"auto"``,
    ``"numpy"`` or ``"python"``.
    """
    if kernel not in KERNEL_NAMES:
        raise ConfigurationError(
            f"unknown query kernel {kernel!r}; expected one of {KERNEL_NAMES}"
        )
    return kernel


def resolve_kernel(kernel: str = KERNEL_AUTO, *, flat: bool = True) -> str:
    """Resolve a kernel request to ``"numpy"`` or ``"python"``.

    ``flat`` says whether the index's labels are on the CSR flat
    backend (the only layout the numpy kernels can view).  An explicit
    ``"numpy"`` request that cannot be honoured raises
    :class:`ConfigurationError`; ``"auto"`` never raises.
    """
    validate_kernel(kernel)
    if kernel == KERNEL_PYTHON:
        return KERNEL_PYTHON
    if kernel == KERNEL_NUMPY:
        if not numpy_available():
            raise ConfigurationError(
                "kernel='numpy' requires NumPy, which is not installed; "
                f"install the optional extra ({FAST_EXTRA}) or use "
                "kernel='python'"
            )
        if not flat:
            raise ConfigurationError(
                "kernel='numpy' reads the CSR arrays of the flat storage "
                "backend; call compact() (or build with backend='flat') "
                "before selecting it"
            )
        return KERNEL_NUMPY
    # auto: vectorize when possible, never complain when not.
    return KERNEL_NUMPY if (flat and numpy_available()) else KERNEL_PYTHON


def record_kernel_queries(kernel: str, count: int = 1) -> None:
    """Bump the per-kernel query counter in the shared obs registry.

    No-op while observability is disabled (the production default), so
    the hot path pays one predicate call.
    """
    if _obs.enabled():
        _obs.registry().counter("kernels.queries", kernel=kernel).inc(count)


__all__ = [
    "FAST_EXTRA",
    "KERNEL_AUTO",
    "KERNEL_NAMES",
    "KERNEL_NUMPY",
    "KERNEL_PYTHON",
    "numpy_available",
    "record_kernel_queries",
    "resolve_kernel",
    "validate_kernel",
]
