"""``python -m repro`` entry point."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
