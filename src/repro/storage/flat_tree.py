"""CSR-packed tree-index labels — the forest half of the ``"flat"`` backend.

The dict backend stores one ``{target: δ^T}`` dict per forest position.
:class:`FlatTreeLabelStore` packs all of them into three shared arrays:

* ``offsets`` — ``array('q')``, position ``pos``'s run is
  ``offsets[pos] .. offsets[pos+1]``;
* ``targets`` — ``array('q')``, ascending node ids within each run (so a
  lookup is one binary search);
* ``dists`` — ``array('q')`` with ``-1`` encoding ``INF`` when every
  finite distance is an integer, ``array('d')`` (native ``inf``)
  otherwise.

The store is sequence-of-mappings compatible: ``store[pos]`` returns a
read-only :class:`TreeRunView` so code written against ``list[dict]``
(serialization, stats) iterates it unchanged, while the hot
``local_get`` path bisects the packed run directly.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from collections.abc import Mapping, Sequence

from repro.exceptions import StorageError
from repro.graphs.graph import INF, Weight
from repro.storage.flat_labels import (
    FLOAT_TYPECODES,
    INT_DIST_TYPECODE,
    OFFSET_TYPECODE,
)

#: Sentinel for ``INF`` inside an integer distance array (distances are
#: non-negative, so -1 is unambiguous).
INF_SENTINEL = -1


def pack_optional_inf(values: list[Weight]) -> array:
    """Pack distances that may include ``INF`` into a typed array."""
    if all(isinstance(value, int) or value == INF for value in values):
        return array(
            INT_DIST_TYPECODE,
            (INF_SENTINEL if value == INF else value for value in values),
        )
    return array("d", values)


class TreeRunView(Mapping):
    """Read-only mapping view of one position's packed label run."""

    __slots__ = ("_store", "_pos")

    def __init__(self, store: "FlatTreeLabelStore", pos: int) -> None:
        self._store = store
        self._pos = pos

    def __getitem__(self, target: int) -> Weight:
        found = self._store.local_get(self._pos, target, _MISSING)
        if found is _MISSING:
            raise KeyError(target)
        return found

    def get(self, target: int, default=None):
        return self._store.local_get(self._pos, target, default)

    def __iter__(self):
        return self._store.iter_targets(self._pos)

    def __len__(self) -> int:
        return self._store.run_size(self._pos)


_MISSING = object()


class FlatTreeLabelStore(Sequence):
    """Immutable CSR store of per-position tree labels.

    Indexing (``store[pos]``) yields :class:`TreeRunView` mappings;
    :meth:`local_get` is the direct lookup used by
    :meth:`repro.core.construction.TreeIndex.local_distance`.
    """

    storage_backend = "flat"

    __slots__ = ("_offsets", "_targets", "_dists", "_views")

    def __init__(
        self, offsets: array, targets: array, dists: array, *, validate: bool = True
    ) -> None:
        """Wrap CSR arrays; ``validate=False`` skips the per-entry scan.

        The cheap endpoint/length invariants are always checked.
        ``validate=False`` is reserved for arrays whose bytes were
        already integrity-verified — the mmap snapshot loader adopts
        CRC-checked views this way so opening a snapshot does not page
        in (or iterate) every label entry.
        """
        if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(targets):
            raise StorageError(
                f"tree-label offsets span "
                f"[{offsets[0] if len(offsets) else '?'}, "
                f"{offsets[-1] if len(offsets) else '?'}] "
                f"but the store holds {len(targets)} entries"
            )
        if len(targets) != len(dists):
            raise StorageError(
                f"{len(targets)} tree-label targets but {len(dists)} distances"
            )
        if validate:
            previous = 0
            for pos in range(len(offsets) - 1):
                start, stop = offsets[pos], offsets[pos + 1]
                if start != previous or stop < start:
                    raise StorageError(
                        f"tree-label offsets are not monotone at position {pos}"
                    )
                previous = stop
                last = -1
                for i in range(start, stop):
                    if targets[i] <= last:
                        raise StorageError(
                            f"tree-label run of position {pos} is not strictly "
                            f"ascending in target id"
                        )
                    last = targets[i]
        self._offsets = offsets
        self._targets = targets
        self._dists = dists
        # Lazily built, kernel-owned NumPy views (repro.kernels.views).
        self._views = None

    @classmethod
    def from_labels(cls, labels) -> "FlatTreeLabelStore":
        """Pack a sequence of ``{target: distance}`` mappings."""
        if isinstance(labels, cls):
            return labels
        offsets = array(OFFSET_TYPECODE, [0])
        targets = array(OFFSET_TYPECODE)
        dists: list[Weight] = []
        for label in labels:
            for target in sorted(label):
                targets.append(target)
                dists.append(label[target])
            offsets.append(len(targets))
        return cls(offsets, targets, pack_optional_inf(dists))

    def to_dicts(self) -> list[dict[int, Weight]]:
        """Unpack into the dict backend's ``list[dict]`` layout."""
        return [dict(self.iter_items(pos)) for pos in range(len(self))]

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, pos):
        if isinstance(pos, slice):
            return [TreeRunView(self, p) for p in range(*pos.indices(len(self)))]
        if pos < 0:
            pos += len(self)
        if not 0 <= pos < len(self):
            raise IndexError(pos)
        return TreeRunView(self, pos)

    # ------------------------------------------------------------------
    # Direct accessors
    # ------------------------------------------------------------------

    def run_size(self, pos: int) -> int:
        """Number of stored targets at ``pos``."""
        return self._offsets[pos + 1] - self._offsets[pos]

    def total_entries(self) -> int:
        """Stored (target, distance) pairs across all positions."""
        return len(self._targets)

    def iter_targets(self, pos: int):
        """Iterate the target ids of ``pos``'s run (ascending)."""
        start, stop = self._offsets[pos], self._offsets[pos + 1]
        targets = self._targets
        for i in range(start, stop):
            yield targets[i]

    def iter_items(self, pos: int):
        """Iterate ``(target, distance)`` pairs of ``pos``'s run."""
        start, stop = self._offsets[pos], self._offsets[pos + 1]
        targets = self._targets
        dists = self._dists
        decode_inf = dists.typecode not in FLOAT_TYPECODES
        for i in range(start, stop):
            value = dists[i]
            if decode_inf and value == INF_SENTINEL:
                yield targets[i], INF
            else:
                yield targets[i], value

    def local_get(self, pos: int, target: int, default=None):
        """δ^T lookup: binary search ``target`` inside ``pos``'s run."""
        start, stop = self._offsets[pos], self._offsets[pos + 1]
        i = bisect_left(self._targets, target, start, stop)
        if i == stop or self._targets[i] != target:
            return default
        value = self._dists[i]
        if value == INF_SENTINEL and self._dists.typecode not in FLOAT_TYPECODES:
            return INF
        return value

    def resident_bytes(self) -> int:
        """Actual bytes held by the packed arrays (buffers + headers)."""
        return sum(
            sys.getsizeof(buf)
            for buf in (self._offsets, self._targets, self._dists)
        )

    def csr_arrays(self) -> tuple[array, array, array]:
        """``(offsets, targets, dists)`` backing arrays.

        Exposed for the binary snapshot writer; callers must not mutate.
        """
        return self._offsets, self._targets, self._dists

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatTreeLabelStore):
            return NotImplemented
        return (
            list(self._offsets) == list(other._offsets)
            and list(self._targets) == list(other._targets)
            and list(self._dists) == list(other._dists)
        )

    def __hash__(self) -> int:  # pragma: no cover - stores are not dict keys
        return id(self)
