"""Resident-memory accounting for label stores.

The paper's 8-bytes-per-entry model (:data:`repro.labeling.base.
BYTES_PER_ENTRY`) prices what a C implementation would store.  This
module measures what the *Python process* actually holds: containers via
:func:`sys.getsizeof` plus one object header per element reference.
That is the number the dict-vs-flat comparison in ``storage-bench``
reports — the whole point of the CSR backend is collapsing per-entry
``PyObject`` overhead (28-byte ints behind 8-byte pointers in resizable
lists and hash tables) into one machine word per field.

Shared small-int singletons are charged per reference: the reference
itself is real memory, and charging the shared object once would make
the number depend on interning details rather than on label shape.
"""

from __future__ import annotations

import sys


def deep_container_bytes(obj) -> int:
    """Recursive :func:`sys.getsizeof` over dicts / lists / tuples / scalars."""
    if isinstance(obj, dict):
        return sys.getsizeof(obj) + sum(
            deep_container_bytes(key) + deep_container_bytes(value)
            for key, value in obj.items()
        )
    if isinstance(obj, (list, tuple)):
        return sys.getsizeof(obj) + sum(deep_container_bytes(item) for item in obj)
    return sys.getsizeof(obj)


def hub_store_resident_bytes(store) -> int:
    """Resident bytes of a hub-label store, either backend.

    Flat stores report their packed buffers; dict-backed
    :class:`~repro.labeling.hub_labels.HubLabeling` instances are walked
    structurally (order + rank lists, per-node rank/distance lists).
    """
    if hasattr(store, "resident_bytes"):
        return store.resident_bytes()
    total = deep_container_bytes(store._order) + deep_container_bytes(store._rank)
    total += deep_container_bytes(store._hub_ranks)
    total += deep_container_bytes(store._hub_dists)
    return total


def tree_store_resident_bytes(labels) -> int:
    """Resident bytes of tree labels: ``list[dict]`` or a flat store."""
    if hasattr(labels, "resident_bytes"):
        return labels.resident_bytes()
    return deep_container_bytes(labels)


def ct_resident_label_bytes(index) -> dict[str, int]:
    """Per-section resident label bytes of a CT-Index.

    Returns ``{"core": ..., "tree": ..., "total": ...}`` for whatever
    backend ``index`` currently uses, so ``storage-bench`` can record the
    dict-vs-flat reduction per section.
    """
    core = hub_store_resident_bytes(index.core_index.labels)
    tree = tree_store_resident_bytes(index.tree_index.labels)
    return {"core": core, "tree": tree, "total": core + tree}
