"""Buffer-backed array views over a memory-mapped snapshot.

The v4 binary snapshot stores every label array as raw little-endian
machine words.  When :func:`repro.storage.binary.load_ct_index_binary`
is called with ``mmap=True`` it maps the file read-only and hands the
big CSR sections out as :class:`MappedArray` views instead of copied
``array.array`` objects: the bytes on disk *are* the in-memory
representation, the page cache is shared between every process mapping
the same snapshot, and ``np.frombuffer`` in :mod:`repro.kernels.views`
sees the mapped pages directly.

:class:`MappedArray` implements the slice of the ``array.array`` API
the flat stores and the snapshot writer actually use (``typecode``,
``itemsize``, ``len``, indexing/slicing, iteration, ``count``,
``tobytes``), so :class:`~repro.storage.flat_labels.FlatLabelStore` and
:class:`~repro.storage.flat_tree.FlatTreeLabelStore` adopt the views
without knowing they are mapped.  Views are read-only by construction
(``mmap.ACCESS_READ`` — a write raises ``TypeError`` at the memoryview
layer), which preserves the stores' immutability contract.

Lifetime: a :class:`MappedSnapshot` owns the ``mmap`` object.  Every
exported memoryview keeps the map alive (CPython memoryviews hold a
reference to their exporter), so dropping the index drops the mapping;
an explicit :meth:`MappedSnapshot.close` is only possible once no view
is left.  The file on disk must not be truncated or rewritten in place
while any process maps it — replace snapshots atomically (write to a
temporary name, then ``rename``), which leaves existing maps reading
the old inode.  Full format-level rules live in ``docs/formats.md``.
"""

from __future__ import annotations

import mmap
import os
from pathlib import Path

from repro.exceptions import SerializationError
from repro.graphs.graph import Graph


class MappedArray:
    """Read-only, ``array.array``-compatible view over mapped bytes.

    Wraps a ``memoryview`` cast to ``typecode``; indexing, slicing and
    iteration go straight to the mapped pages — no element is ever
    copied into process-private memory until something materializes it
    (``list(...)``, ``tobytes()``, a numpy ``astype``).
    """

    __slots__ = ("raw", "typecode", "itemsize")

    def __init__(self, view: memoryview, typecode: str) -> None:
        try:
            cast = view.cast(typecode)
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"cannot view mapped section as {typecode!r} items: {exc}"
            ) from exc
        #: The typed memoryview itself — ``np.frombuffer`` consumes it.
        self.raw = cast
        self.typecode = typecode
        self.itemsize = cast.itemsize

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, index):
        return self.raw[index]

    def __iter__(self):
        return iter(self.raw)

    def count(self, value) -> int:
        """Occurrences of ``value`` (mirrors ``array.count``)."""
        total = 0
        for item in self.raw:
            if item == value:
                total += 1
        return total

    def tobytes(self) -> bytes:
        """A private-memory copy of the raw little-endian items."""
        return self.raw.tobytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MappedArray(typecode={self.typecode!r}, len={len(self)})"


class LazyGraph(Graph):
    """A :class:`~repro.graphs.graph.Graph` that decodes on first touch.

    The mapped loader knows a graph section's node count from its
    header without paging in (or tuple-decoding) the edge arrays, and
    the query path only ever asks a loaded index's graphs for ``n`` —
    so in ``mmap=True`` mode the heavyweight adjacency decode is
    deferred until something actually walks the topology (``edges()``,
    ``save``, ``index_fingerprint``).  The deferral is invisible:
    ``LazyGraph`` *is* a ``Graph``; any access to the adjacency (or to
    ``m`` / ``unweighted``, which require scanning the section) runs
    the decode thunk once and behaves identically from then on.
    """

    __slots__ = ("_thunk",)

    _DEFERRED = ("_m", "_adj_ids", "_adj_weights", "_unweighted")

    def __init__(self, n: int, thunk) -> None:
        # Deliberately skips Graph.__init__: only the node count is
        # known eagerly; the remaining slots stay unset so their first
        # read routes through __getattr__ and materializes.
        self._n = n
        self._thunk = thunk

    def __getattr__(self, name: str):
        if name in LazyGraph._DEFERRED:
            self._materialize()
            return object.__getattribute__(self, name)
        raise AttributeError(name)

    def _materialize(self) -> None:
        thunk = self._thunk
        if thunk is None:  # pragma: no cover - defensive; slots set below
            raise SerializationError("lazy graph lost its decode thunk")
        full = thunk()
        if full.n != self._n:
            raise SerializationError(
                f"graph section decodes to {full.n} nodes but its header "
                f"promised {self._n}"
            )
        self._m = full._m
        self._adj_ids = full._adj_ids
        self._adj_weights = full._adj_weights
        self._unweighted = full._unweighted
        self._thunk = None

    @property
    def materialized(self) -> bool:
        """True once the adjacency has been decoded."""
        return self._thunk is None


class MappedSnapshot:
    """An open, CRC-verified memory-mapping of one snapshot file.

    Created by the binary loader; reachable from the loaded index as
    ``index.snapshot_source`` so callers can see where the bytes live
    and how large the mapping is.  The mapping is read-only and shared:
    N processes (or N indexes in one process) mapping the same path
    share one set of physical pages through the OS page cache.
    """

    __slots__ = ("path", "size", "_map", "_closed")

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError as exc:
            raise SerializationError(
                f"cannot open index file {path} for mapping: {exc}"
            ) from exc
        try:
            self.size = os.fstat(fd).st_size
            if self.size == 0:
                raise SerializationError(
                    f"{path} is too short to be a CT-Index snapshot"
                )
            self._map = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise SerializationError(
                f"cannot map index file {path}: {exc}"
            ) from exc
        finally:
            # The mapping survives the descriptor; close it either way.
            os.close(fd)
        self._closed = False

    def view(self) -> memoryview:
        """A byte-format memoryview over the whole mapped file."""
        if self._closed:
            raise SerializationError(
                f"snapshot mapping of {self.path} is closed"
            )
        return memoryview(self._map)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has succeeded."""
        return self._closed

    def close(self) -> None:
        """Unmap the file.

        Only possible once nothing references the mapped pages any
        more — while a loaded index still holds views, CPython raises
        ``BufferError``, which is surfaced as a
        :class:`~repro.exceptions.SerializationError` naming the path.
        Dropping the index (and any numpy views derived from it) is the
        usual way to release a mapping; explicit ``close`` exists for
        deterministic teardown in long-lived servers.
        """
        if self._closed:
            return
        try:
            self._map.close()
        except BufferError as exc:
            raise SerializationError(
                f"cannot close snapshot mapping of {self.path}: label views "
                f"still reference the mapped pages ({exc})"
            ) from exc
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{self.size} bytes"
        return f"MappedSnapshot({str(self.path)!r}, {state})"


__all__ = ["LazyGraph", "MappedArray", "MappedSnapshot"]
