"""Versioned binary snapshots of built CT-Indexes (format version 4).

The JSON document of :mod:`repro.core.serialization` stays the
inspectable interchange format; this module adds the fast path: label
arrays written as raw little-endian machine words behind a checksummed
section table, so loading is ``array.frombytes`` instead of parsing
millions of JSON tokens.

Layout (full field-level description in ``docs/formats.md``)::

    header   8s magic ("RCTINDEX")  u32 version (4)  u32 section count
    table    per section: 12s name  u64 offset  u64 length  u32 crc32
    payload  concatenated section bodies

Sections: ``meta`` (small JSON: format tag, version, bandwidth, build
seconds), ``graph`` (original graph), ``reduction`` (reduced graph +
twin maps), ``elim`` (MDE steps + core adjacency), ``treelabels``
(CSR tree labels), ``core`` (vertex order + CSR 2-hop labels + core
graph).  Every typed array is prefixed with its typecode, item size and
count; every section's CRC-32 is verified before a single byte is
decoded, so truncated or bit-flipped snapshots raise
:class:`~repro.exceptions.SerializationError` instead of unpacking
garbage.

Version 4 writes every integer array with the *narrowest sufficient*
typecode of its signedness family (``b/h/i/q`` or ``B/H/I/Q``) instead
of fixed 8-byte words — on real graphs this roughly halves the
treelabels/core sections, which are almost entirely small distances and
node ids.  The loader reads versions 3 (always 8-byte/4-byte arrays)
and 4 alike: the typecode prefix already tells it the layout.

Loading defaults to the flat backend — the on-disk CSR arrays *are* the
in-memory representation — but ``backend="dict"`` unpacks into the
mutable dict layout.

``mmap=True`` goes one step further: the file is memory-mapped
read-only, every section's CRC is verified once against the mapped
pages, and the big CSR label sections (``treelabels``, ``core``) are
adopted as :class:`~repro.storage.mapped.MappedArray` views instead of
copies — the flat stores then read, and
:func:`repro.kernels.views.as_ndarray` wraps, the file's own pages.
N processes mapping one snapshot share a single resident copy through
the page cache (the ``repro.serving.fleet`` deployment shape).  See
``docs/formats.md`` for the view-vs-decode split and file-lifetime
rules.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Union

from repro.exceptions import ReproError, SerializationError
from repro.graphs.graph import INF, Graph, Weight
from repro.obs.tracing import span as obs_span, tracing_enabled
from repro.graphs.reductions import EquivalenceReduction
from repro.storage.flat_labels import FlatLabelStore
from repro.storage.flat_tree import INF_SENTINEL, FlatTreeLabelStore
from repro.storage.mapped import LazyGraph, MappedArray, MappedSnapshot

PathLike = Union[str, os.PathLike]

#: First 8 bytes of every binary snapshot.
MAGIC = b"RCTINDEX"

#: Version written by :func:`save_ct_index_binary`.  Version 3 was the
#: first binary format (versions 1-2 are the JSON documents of
#: :mod:`repro.core.serialization`); version 4 narrows integer arrays
#: to their smallest sufficient typecode.
BINARY_FORMAT_VERSION = 4

#: Header versions :func:`load_ct_index_binary` accepts.
SUPPORTED_BINARY_VERSIONS = frozenset({3, 4})

_HEADER = struct.Struct("<8sII")
_SECTION = struct.Struct("<12sQQI")
_SECTION_NAMES = ("meta", "graph", "reduction", "elim", "treelabels", "core")

#: Typecode families a snapshot array may use.  v3 only ever wrote
#: ``q``/``I``/``B``/``d``; v4 narrows within the same signedness
#: family, so loaders accept the whole family wherever an integer
#: array is expected.
_SIGNED_INT_CODES = "bhiq"
_UNSIGNED_INT_CODES = "BHIQ"
_INT_CODES = _SIGNED_INT_CODES + _UNSIGNED_INT_CODES
#: Distance arrays: a signed integer family (with the -1 INF sentinel)
#: or float64.
_DIST_CODES = _SIGNED_INT_CODES + "d"
#: Hub-rank arrays: unsigned (v3 wrote 'I'; v4 narrows to B/H).
_RANK_CODES = "BHI"

#: twin_kind byte encoding (reduction section).
_TWIN_CODES = {None: 0, "true": 1, "false": 2}
_TWIN_KINDS = {code: kind for kind, code in _TWIN_CODES.items()}


# ----------------------------------------------------------------------
# Primitive writers / readers
# ----------------------------------------------------------------------


def _little_endian(values: array) -> array:
    """A little-endian copy of ``values`` (no-op on LE machines)."""
    if sys.byteorder == "big":  # pragma: no cover - no BE hardware in CI
        values = array(values.typecode, values)
        values.byteswap()
    return values


def _put_u64(buf: bytearray, value: int) -> None:
    buf += struct.pack("<Q", value)


def _put_array(buf: bytearray, values: array) -> None:
    """Typecode byte + item size byte + u64 count + raw LE items."""
    buf += values.typecode.encode("ascii")
    buf.append(values.itemsize)
    _put_u64(buf, len(values))
    buf += _little_endian(values).tobytes()


def _narrowed(values: array) -> array:
    """``values`` recoded to the narrowest typecode of its family.

    Integer arrays only — floats and empty arrays come back unchanged.
    Signed arrays stay signed (the -1 INF sentinel survives), unsigned
    stay unsigned.
    """
    if values.typecode not in _INT_CODES or not len(values):
        return values
    signed = values.typecode in _SIGNED_INT_CODES
    lo, hi = min(values), max(values)
    for code in _SIGNED_INT_CODES if signed else _UNSIGNED_INT_CODES:
        bits = array(code).itemsize * 8
        if signed:
            fits = -(1 << (bits - 1)) <= lo and hi < 1 << (bits - 1)
        else:
            fits = hi < 1 << bits
        if fits:
            return values if code == values.typecode else array(code, values)
    return values  # pragma: no cover - 'q'/'Q' always fit


def _put_narrow(buf: bytearray, values: array) -> None:
    """:func:`_put_array` of the narrowest recoding (the v4 writer path)."""
    _put_array(buf, _narrowed(values))


def _put_blob(buf: bytearray, payload: bytes) -> None:
    _put_u64(buf, len(payload))
    buf += payload


class _Cursor:
    """Bounds-checked reader over one section's payload.

    ``data`` is ``bytes`` (copying load) or a ``memoryview`` over the
    mapped file.  With ``zero_copy=True`` (mmap mode, little-endian
    hosts) :meth:`typed_array` wraps the payload bytes in a
    :class:`~repro.storage.mapped.MappedArray` view instead of copying
    them into a private ``array.array``.
    """

    __slots__ = ("name", "data", "pos", "zero_copy")

    def __init__(self, name: str, data, *, zero_copy: bool = False) -> None:
        self.name = name
        self.data = data
        self.pos = 0
        self.zero_copy = zero_copy

    def _take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise SerializationError(
                f"section {self.name!r} is truncated "
                f"(needed {count} bytes at offset {self.pos})"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def typed_array(self, expected_typecode: str | None = None):
        typecode = bytes(self._take(1)).decode("ascii", "replace")
        itemsize = self._take(1)[0]
        count = self.u64()
        try:
            out = array(typecode)
        except ValueError as exc:
            raise SerializationError(
                f"section {self.name!r} holds an array of unknown "
                f"typecode {typecode!r}"
            ) from exc
        if expected_typecode is not None and typecode not in expected_typecode:
            raise SerializationError(
                f"section {self.name!r} holds a {typecode!r} array where "
                f"one of {expected_typecode!r} was expected"
            )
        if out.itemsize != itemsize:
            raise SerializationError(
                f"section {self.name!r} was written with {itemsize}-byte "
                f"{typecode!r} items; this platform uses {out.itemsize}-byte items"
            )
        chunk = self._take(count * itemsize)
        if self.zero_copy:
            return MappedArray(chunk, typecode)
        out.frombytes(chunk)
        return _little_endian(out)

    def skip_typed_array(self) -> None:
        """Advance past one typed array without decoding (or paging) it."""
        self._take(1)
        itemsize = self._take(1)[0]
        count = self.u64()
        if itemsize == 0:
            raise SerializationError(
                f"section {self.name!r} holds an array of zero-byte items"
            )
        self._take(count * itemsize)

    def blob(self) -> bytes:
        return self._take(self.u64())

    def done(self) -> None:
        if self.pos != len(self.data):
            raise SerializationError(
                f"section {self.name!r} has {len(self.data) - self.pos} "
                f"trailing bytes"
            )


def _weights_to_array(values: list[Weight]) -> array:
    """Distances (possibly ``INF``) as ``'q'`` with -1 sentinel, else ``'d'``."""
    if all(isinstance(value, int) or value == INF for value in values):
        return array(
            "q", (INF_SENTINEL if value == INF else value for value in values)
        )
    return array("d", values)


def _weights_from_array(packed: array) -> list[Weight]:
    """Invert :func:`_weights_to_array`; reject sub-sentinel garbage."""
    if packed.typecode in _SIGNED_INT_CODES:
        lowest = min(packed, default=0)
        if lowest >= 0:  # common case: no INF entries, no decode loop
            return list(packed)
        if lowest < INF_SENTINEL:
            raise SerializationError(
                f"negative distance {lowest} in integer weight array"
            )
        return [INF if value == INF_SENTINEL else value for value in packed]
    return list(packed)


# ----------------------------------------------------------------------
# Graph packing
# ----------------------------------------------------------------------


def _put_graph(buf: bytearray, graph: Graph) -> None:
    us: list[int] = []
    vs: list[int] = []
    ws: list[Weight] = []
    for u, v, w in graph.edges():
        us.append(u)
        vs.append(v)
        ws.append(w)
    _put_u64(buf, graph.n)
    _put_narrow(buf, array("q", us))
    _put_narrow(buf, array("q", vs))
    _put_narrow(buf, _weights_to_array(ws))


def _read_graph(cursor: _Cursor) -> Graph:
    n = cursor.u64()
    us = cursor.typed_array(_INT_CODES)
    vs = cursor.typed_array(_INT_CODES)
    packed_ws = cursor.typed_array(_DIST_CODES)
    if n > 1 << 40:
        raise SerializationError(
            f"section {cursor.name!r} claims an implausible node count {n}"
        )
    if not len(us) == len(vs) == len(packed_ws):
        raise SerializationError(
            f"section {cursor.name!r} holds ragged edge arrays"
        )
    from repro.kernels import numpy_available

    if numpy_available():
        return _assemble_graph_numpy(cursor.name, n, us, vs, packed_ws)
    ws = _weights_from_array(packed_ws)
    # The writer dumps an already-normalized graph (each edge once), so
    # adjacency is assembled directly instead of re-deduplicating through
    # GraphBuilder — that difference is most of the binary loader's win
    # over JSON.  Every simple-graph invariant is enforced here against
    # the CRC-verified arrays — bounds and weights in bulk (C-speed
    # min/max), self-loops in the assembly loop, duplicates per sorted
    # row — so the graph is adopted through the trusted constructor
    # without a second per-element validation pass.
    if len(us) and not (
        0 <= min(us) and max(us) < n and 0 <= min(vs) and max(vs) < n
    ):
        raise SerializationError(
            f"section {cursor.name!r} holds an edge endpoint outside 0..{n - 1}"
        )
    if len(ws) and min(ws) <= 0:
        raise SerializationError(
            f"section {cursor.name!r} holds a non-positive edge weight"
        )
    unweighted = ws.count(1) == len(ws)
    adjacency: list[list[tuple[int, Weight]]] = [[] for _ in range(n)]
    for u, v, w in zip(us, vs, ws):
        if u == v:
            raise SerializationError(
                f"section {cursor.name!r} holds a self-loop on node {u}"
            )
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    adj_ids: list[tuple[int, ...]] = []
    adj_weights: list[tuple[Weight, ...]] = []
    for v, row in enumerate(adjacency):
        if not row:
            adj_ids.append(())
            adj_weights.append(())
            continue
        row.sort()
        ids, row_weights = zip(*row)
        if len(set(ids)) != len(ids):
            raise SerializationError(
                f"section {cursor.name!r} holds parallel edges at node {v}"
            )
        adj_ids.append(ids)
        adj_weights.append(row_weights)
    return Graph._from_trusted_rows(
        n, adj_ids, adj_weights, len(us), unweighted=unweighted
    )


def _assemble_graph_numpy(name: str, n: int, us, vs, packed_ws) -> Graph:
    """Vectorized :func:`_read_graph` body (same checks, same graph).

    Sorting, bounds/loop/duplicate detection, and the CSR split all run
    as array reductions, which is most of the snapshot decode on real
    graphs.  ``us``/``vs``/``packed_ws`` may be ``array.array`` copies
    or :class:`~repro.storage.mapped.MappedArray` views — both expose a
    buffer.
    """
    import numpy as np

    u = np.frombuffer(getattr(us, "raw", us), dtype=np.dtype(us.typecode))
    v = np.frombuffer(getattr(vs, "raw", vs), dtype=np.dtype(vs.typecode))
    w = np.frombuffer(getattr(packed_ws, "raw", packed_ws), dtype=np.dtype(packed_ws.typecode))
    u = u.astype(np.int64, copy=False)
    v = v.astype(np.int64, copy=False)
    m = len(u)
    if m and not (
        0 <= int(u.min()) and int(u.max()) < n and 0 <= int(v.min()) and int(v.max()) < n
    ):
        raise SerializationError(
            f"section {name!r} holds an edge endpoint outside 0..{n - 1}"
        )
    integral = w.dtype.kind in "iu"
    has_inf = False
    if m:
        if integral:
            if int(w.min()) < INF_SENTINEL:
                raise SerializationError(
                    f"negative distance {int(w.min())} in integer weight array"
                )
            has_inf = bool((w == INF_SENTINEL).any())
            if bool(((w <= 0) & (w != INF_SENTINEL)).any()):
                raise SerializationError(
                    f"section {name!r} holds a non-positive edge weight"
                )
        elif bool((w <= 0).any()):
            raise SerializationError(
                f"section {name!r} holds a non-positive edge weight"
            )
        loops = np.nonzero(u == v)[0]
        if loops.size:
            raise SerializationError(
                f"section {name!r} holds a self-loop on node {int(u[loops[0]])}"
            )
    unweighted = bool((w == 1).all())
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    if m:
        dup = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
        hits = np.nonzero(dup)[0]
        if hits.size:
            raise SerializationError(
                f"section {name!r} holds parallel edges at node {int(src[hits[0]])}"
            )
    bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=bounds[1:])
    bounds = bounds.tolist()
    ids_flat = dst.tolist()
    adj_ids = [tuple(ids_flat[bounds[i] : bounds[i + 1]]) for i in range(n)]
    if unweighted:
        adj_weights: list[tuple[Weight, ...]] = [(1,) * len(ids) for ids in adj_ids]
    else:
        wt = np.concatenate([w, w])[order].tolist()
        if has_inf:
            wt = [INF if value == INF_SENTINEL else value for value in wt]
        adj_weights = [tuple(wt[bounds[i] : bounds[i + 1]]) for i in range(n)]
    return Graph._from_trusted_rows(n, adj_ids, adj_weights, m, unweighted=unweighted)


def _skip_graph(cursor: _Cursor) -> tuple[int, object]:
    """Advance ``cursor`` past one graph blob without decoding it.

    Returns ``(n, span)`` where ``span`` is the undecoded payload slice
    — header-only bounds checks, no edge array is paged in or
    tuple-decoded.  Feeds :func:`_lazy_graph`.
    """
    start = cursor.pos
    n = cursor.u64()
    for _ in range(3):
        cursor.skip_typed_array()
    return n, cursor.data[start : cursor.pos]


def _lazy_graph(name: str, n: int, span) -> LazyGraph:
    """A :class:`~repro.storage.mapped.LazyGraph` decoding ``span`` on demand.

    The mapped load path defers every graph section this way: queries
    only ask the loaded graphs for ``n``, so adjacency decode — the
    bulk of snapshot decode time — moves off the start-up path
    entirely and runs (once) only if something walks the topology.
    """
    if n > 1 << 40:
        raise SerializationError(
            f"section {name!r} claims an implausible node count {n}"
        )

    def thunk() -> Graph:
        cursor = _Cursor(name, span)
        graph = _read_graph(cursor)
        cursor.done()
        return graph

    return LazyGraph(n, thunk)


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------


def save_ct_index_binary(index, path: PathLike) -> None:
    """Write ``index`` to ``path`` as a v4 binary snapshot.

    Works on either storage backend (dict-backed labels are packed on
    the way out); the snapshot itself is backend-agnostic, like the JSON
    document.
    """
    sections: dict[str, bytes] = {}

    meta = {
        "format": "repro-ct-index",
        "version": BINARY_FORMAT_VERSION,
        "bandwidth": index.bandwidth,
        "build_seconds": index.build_seconds,
    }
    sections["meta"] = json.dumps(meta, sort_keys=True).encode("utf-8")

    buf = bytearray()
    _put_graph(buf, index.graph)
    sections["graph"] = bytes(buf)

    reduction = index.reduction
    buf = bytearray()
    _put_graph(buf, reduction.reduced)
    _put_narrow(buf, array("q", reduction.representative))
    _put_narrow(buf, array("q", reduction.originals))
    try:
        twin_codes = array("B", (_TWIN_CODES[kind] for kind in reduction.twin_kind))
    except KeyError as exc:
        raise SerializationError(
            f"cannot encode twin kind {exc.args[0]!r} in a binary snapshot"
        ) from exc
    _put_array(buf, twin_codes)
    sections["reduction"] = bytes(buf)

    elimination = index.decomposition.elimination
    buf = bytearray()
    nodes: list[int] = []
    counts: list[int] = []
    flat_neighbors: list[int] = []
    flat_dists: list[Weight] = []
    for step in elimination.steps:
        nodes.append(step.node)
        counts.append(len(step.neighbors))
        flat_neighbors.extend(step.neighbors)
        flat_dists.extend(step.local_distance[u] for u in step.neighbors)
    _put_narrow(buf, array("q", nodes))
    _put_narrow(buf, array("q", counts))
    _put_narrow(buf, array("q", flat_neighbors))
    _put_narrow(buf, _weights_to_array(flat_dists))
    core_nodes = elimination.core_nodes
    core_counts: list[int] = []
    core_targets: list[int] = []
    core_weights: list[Weight] = []
    for v in core_nodes:
        row = elimination.core_adjacency[v]
        core_counts.append(len(row))
        for u in sorted(row):
            core_targets.append(u)
            core_weights.append(row[u])
    _put_narrow(buf, array("q", core_nodes))
    _put_narrow(buf, array("q", core_counts))
    _put_narrow(buf, array("q", core_targets))
    _put_narrow(buf, _weights_to_array(core_weights))
    sections["elim"] = bytes(buf)

    tree_store = FlatTreeLabelStore.from_labels(index.tree_index.labels)
    offsets, targets, dists = tree_store.csr_arrays()
    buf = bytearray()
    _put_narrow(buf, offsets)
    _put_narrow(buf, targets)
    _put_narrow(buf, dists)
    sections["treelabels"] = bytes(buf)

    core_store = FlatLabelStore.from_store(index.core_index.labels)
    order, offsets, hub_ranks, hub_dists = core_store.csr_arrays()
    buf = bytearray()
    _put_narrow(buf, array("q", index.core_originals))
    _put_narrow(buf, order)
    _put_narrow(buf, offsets)
    _put_narrow(buf, hub_ranks)
    _put_narrow(buf, hub_dists)
    _put_graph(buf, index.core_index.graph)
    sections["core"] = bytes(buf)

    table_bytes = _HEADER.size + _SECTION.size * len(_SECTION_NAMES)
    offset = table_bytes
    table = bytearray(_HEADER.pack(MAGIC, BINARY_FORMAT_VERSION, len(_SECTION_NAMES)))
    body = bytearray()
    for name in _SECTION_NAMES:
        payload = sections[name]
        table += _SECTION.pack(
            name.encode("ascii"), offset, len(payload), zlib.crc32(payload)
        )
        body += payload
        offset += len(payload)
    Path(path).write_bytes(bytes(table + body))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def is_binary_snapshot(path: PathLike) -> bool:
    """True when ``path`` starts with the binary snapshot magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _read_sections(
    path: Path, *, use_mmap: bool = False
) -> tuple[int, dict[str, bytes], MappedSnapshot | None]:
    """Parse, validate, and CRC-check the section table of ``path``.

    Returns ``(version, sections, source)``.  In the copying mode
    (``use_mmap=False``) the whole file is read into private memory and
    section payloads are ``bytes``; with ``use_mmap=True`` the file is
    memory-mapped read-only, payloads are ``memoryview`` windows into
    the map, and ``source`` is the :class:`MappedSnapshot` keeping it
    alive.  Either way every section's CRC-32 is verified here, before
    a single byte is decoded — and the table itself is rejected when it
    repeats a section name or when two sections' byte ranges overlap
    (a crafted table could otherwise alias one payload under two names
    or smuggle a second copy of a section past the reader).
    """
    source: MappedSnapshot | None = None
    if use_mmap:
        source = MappedSnapshot(path)
        data = source.view()
    else:
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise SerializationError(f"cannot read index file {path}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise SerializationError(f"{path} is too short to be a CT-Index snapshot")
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SerializationError(f"{path} is not a CT-Index binary snapshot (bad magic)")
    if version not in SUPPORTED_BINARY_VERSIONS:
        raise SerializationError(
            f"unsupported binary snapshot version {version} in {path}; "
            f"this build reads versions {sorted(SUPPORTED_BINARY_VERSIONS)}"
        )
    table_end = _HEADER.size + _SECTION.size * count
    if count > 1024 or table_end > len(data):
        raise SerializationError(f"corrupt section table in {path}")
    entries: list[tuple[str, int, int, int]] = []
    for i in range(count):
        raw_name, offset, length, crc = _SECTION.unpack_from(
            data, _HEADER.size + _SECTION.size * i
        )
        name = raw_name.rstrip(b"\x00").decode("ascii", "replace")
        end = offset + length
        if offset < table_end or end > len(data):
            raise SerializationError(
                f"section {name!r} of {path} is truncated or out of bounds"
            )
        entries.append((name, offset, length, crc))
    names = [name for name, _, _, _ in entries]
    if len(set(names)) != len(names):
        duplicate = next(name for name in names if names.count(name) > 1)
        raise SerializationError(
            f"section table of {path} repeats section {duplicate!r}"
        )
    spans = sorted((offset, offset + length, name) for name, offset, length, _ in entries)
    for (_, prev_end, prev_name), (next_start, _, next_name) in zip(spans, spans[1:]):
        if next_start < prev_end:
            raise SerializationError(
                f"sections {prev_name!r} and {next_name!r} of {path} overlap"
            )
    sections: dict[str, bytes] = {}
    for name, offset, length, crc in entries:
        payload = data[offset : offset + length]
        if zlib.crc32(payload) != crc:
            raise SerializationError(
                f"checksum mismatch in section {name!r} of {path}"
            )
        sections[name] = payload
    missing = [name for name in _SECTION_NAMES if name not in sections]
    if missing:
        raise SerializationError(
            f"{path} is missing snapshot sections: {', '.join(missing)}"
        )
    return version, sections, source


def load_ct_index_binary(path: PathLike, *, backend: str = "flat", mmap: bool = False):
    """Reload a CT-Index written by :func:`save_ct_index_binary`.

    ``backend`` selects the label storage of the loaded index:
    ``"flat"`` (default — the arrays are adopted as-is) or ``"dict"``
    (unpacked into the mutable layout).

    ``mmap=True`` maps the file read-only instead of copying it: the
    CSR label sections become buffer-backed views over the mapped
    pages (zero resident duplication across processes mapping the same
    snapshot, no per-entry decode on the start-up path).  Every
    section's CRC is still verified at open; the returned index keeps
    the mapping alive through ``index.snapshot_source``.  Requires the
    flat backend — the dict layout is private memory by construction.
    """
    if backend not in ("dict", "flat"):
        raise SerializationError(
            f"unknown storage backend {backend!r}; expected 'dict' or 'flat'"
        )
    if mmap and backend != "flat":
        raise SerializationError(
            f"mmap=True requires backend='flat' (the {backend!r} layout "
            f"copies every entry into private memory, defeating the map)"
        )
    path = Path(path)
    with obs_span("storage.binary_load", backend=backend, mapped=mmap) as load_span:
        version, sections, source = _read_sections(path, use_mmap=mmap)
        if tracing_enabled():
            load_span.set(bytes=sum(len(body) for body in sections.values()))
        try:
            return _decode_snapshot(path, sections, backend, version, source=source)
        except SerializationError:
            raise
        except (
            KeyError,
            TypeError,
            ValueError,
            IndexError,
            AttributeError,
            OverflowError,
            struct.error,
            ReproError,
        ) as exc:
            # One library error for any malformed payload, mirroring the
            # JSON loader's contract.
            raise SerializationError(
                f"corrupt CT-Index snapshot in {path}: {exc!r}"
            ) from exc


def _decode_snapshot(
    path: Path,
    sections: dict[str, bytes],
    backend: str,
    version: int,
    *,
    source: MappedSnapshot | None = None,
):
    from repro.core.construction import TreeIndex
    from repro.core.ct_index import CTIndex
    from repro.labeling.pll import PrunedLandmarkLabeling
    from repro.treedec.core_tree import core_tree_decomposition
    from repro.treedec.elimination import EliminationResult, EliminationStep

    # Zero-copy adoption needs the on-disk byte order to be the native
    # one; on big-endian hosts a mapped load still works (the map was
    # CRC-verified) but label arrays are decoded via the copying path.
    zero_copy = source is not None and sys.byteorder == "little"

    try:
        meta = json.loads(bytes(sections["meta"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"corrupt meta section in {path}: {exc}"
        ) from exc
    if meta.get("format") != "repro-ct-index":
        raise SerializationError(f"{path} is not a CT-Index snapshot")
    if meta.get("version") != version:
        raise SerializationError(
            f"meta section claims version {meta.get('version')!r} but the "
            f"header of {path} says {version}"
        )
    bandwidth = meta["bandwidth"]
    if not isinstance(bandwidth, int) or bandwidth < 0:
        raise SerializationError(f"invalid bandwidth {bandwidth!r} in {path}")

    cursor = _Cursor("graph", sections["graph"])
    if zero_copy:
        n_graph, graph_span = _skip_graph(cursor)
        graph = _lazy_graph("graph", n_graph, graph_span)
    else:
        graph = _read_graph(cursor)
    cursor.done()

    cursor = _Cursor("reduction", sections["reduction"])
    if zero_copy:
        n_reduced, reduced_span = _skip_graph(cursor)
        reduced = _lazy_graph("reduction", n_reduced, reduced_span)
    else:
        reduced = _read_graph(cursor)
    representative = list(cursor.typed_array(_INT_CODES))
    originals_map = list(cursor.typed_array(_INT_CODES))
    twin_codes = cursor.typed_array("B")
    cursor.done()
    try:
        twin_kind = [_TWIN_KINDS[code] for code in twin_codes]
    except KeyError as exc:
        raise SerializationError(
            f"unknown twin-kind code {exc.args[0]!r} in {path}"
        ) from exc
    reduction = EquivalenceReduction(
        original=graph,
        reduced=reduced,
        representative=representative,
        originals=originals_map,
        twin_kind=twin_kind,
    )

    cursor = _Cursor("elim", sections["elim"])
    nodes = cursor.typed_array(_INT_CODES)
    counts = cursor.typed_array(_INT_CODES)
    flat_neighbors = cursor.typed_array(_INT_CODES)
    flat_dists = _weights_from_array(cursor.typed_array(_DIST_CODES))
    core_nodes = list(cursor.typed_array(_INT_CODES))
    core_counts = cursor.typed_array(_INT_CODES)
    core_targets = cursor.typed_array(_INT_CODES)
    core_weights = _weights_from_array(cursor.typed_array(_DIST_CODES))
    cursor.done()
    if len(nodes) != len(counts) or sum(counts) != len(flat_neighbors):
        raise SerializationError(f"ragged elimination arrays in {path}")
    if len(flat_neighbors) != len(flat_dists):
        raise SerializationError(f"ragged elimination distance array in {path}")
    steps = []
    base = 0
    for node, count in zip(nodes, counts):
        neighbors = tuple(flat_neighbors[base : base + count])
        local = dict(zip(neighbors, flat_dists[base : base + count]))
        steps.append(
            EliminationStep(node=node, neighbors=neighbors, local_distance=local)
        )
        base += count
    position: list[int | None] = [None] * reduced.n
    for i, step in enumerate(steps):
        if not 0 <= step.node < reduced.n or position[step.node] is not None:
            raise SerializationError(
                f"elimination step {i} names node {step.node} outside the "
                f"reduced graph (or twice) in {path}"
            )
        position[step.node] = i
    if core_nodes != sorted(set(core_nodes)):
        raise SerializationError(f"core node list of {path} is not sorted-unique")
    if len(core_nodes) != len(core_counts) or sum(core_counts) != len(core_targets):
        raise SerializationError(f"ragged core-adjacency arrays in {path}")
    core_adjacency: dict[int, dict[int, Weight]] = {}
    base = 0
    for v, count in zip(core_nodes, core_counts):
        core_adjacency[v] = dict(
            zip(core_targets[base : base + count], core_weights[base : base + count])
        )
        base += count
    elimination = EliminationResult(
        graph=reduced,
        steps=steps,
        position=position,
        core_nodes=core_nodes,
        core_adjacency=core_adjacency,
        bandwidth=bandwidth,
    )
    decomposition = core_tree_decomposition(reduced, bandwidth, elimination=elimination)

    cursor = _Cursor("treelabels", sections["treelabels"], zero_copy=zero_copy)
    tree_offsets = cursor.typed_array(_INT_CODES)
    tree_targets = cursor.typed_array(_INT_CODES)
    tree_dists = cursor.typed_array(_DIST_CODES)
    cursor.done()
    # The mapped path adopts CRC-verified views as-is; the per-entry
    # monotonicity scan would touch (and page in) every label at open,
    # defeating the instant-start-up contract.
    tree_store = FlatTreeLabelStore(
        tree_offsets, tree_targets, tree_dists, validate=not zero_copy
    )
    if len(tree_store) != decomposition.boundary:
        raise SerializationError(
            f"{path} stores {len(tree_store)} tree labels for a boundary "
            f"of {decomposition.boundary}"
        )
    tree_labels = tree_store if backend == "flat" else tree_store.to_dicts()
    tree_index = TreeIndex(decomposition, tree_labels)

    cursor = _Cursor("core", sections["core"], zero_copy=zero_copy)
    core_originals = list(cursor.typed_array(_INT_CODES))
    order = cursor.typed_array(_INT_CODES)
    offsets = cursor.typed_array(_INT_CODES)
    hub_ranks = cursor.typed_array(_RANK_CODES)
    hub_dists = cursor.typed_array(_DIST_CODES)
    if zero_copy:
        n_core, core_span = _skip_graph(cursor)
        core_graph = _lazy_graph("core", n_core, core_span)
    else:
        core_graph = _read_graph(cursor)
    cursor.done()
    if zero_copy:
        store = FlatLabelStore.adopt_arrays(order, offsets, hub_ranks, hub_dists)
    else:
        if hub_dists.typecode in _SIGNED_INT_CODES and any(d < 0 for d in hub_dists):
            raise SerializationError(f"negative core label distance in {path}")
        store = FlatLabelStore.from_arrays(order, offsets, hub_ranks, hub_dists)
    if store.n != core_graph.n or store.n != len(core_originals):
        raise SerializationError(
            f"core section of {path} is internally inconsistent "
            f"({store.n} labeled nodes, {core_graph.n} core-graph nodes, "
            f"{len(core_originals)} originals)"
        )
    labels = store if backend == "flat" else store.to_hub_labeling()
    core_index = PrunedLandmarkLabeling(core_graph, labels, list(order))
    compact = {orig: i for i, orig in enumerate(core_originals)}

    index = CTIndex(
        graph=graph,
        bandwidth=bandwidth,
        reduction=reduction,
        tree_index=tree_index,
        core_index=core_index,
        core_originals=core_originals,
        core_compact=compact,
    )
    index.build_seconds = float(meta.get("build_seconds", 0.0))
    index.snapshot_source = source
    return index
