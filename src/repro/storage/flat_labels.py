"""CSR-packed 2-hop label storage — the ``"flat"`` backend.

:class:`FlatLabelStore` holds every node's (hub rank, distance) entries
in three shared typed arrays instead of per-node Python lists:

* ``offsets`` — ``array('q')`` of length ``n + 1``; node ``v``'s entries
  live at positions ``offsets[v] .. offsets[v+1]``;
* ``hub_ranks`` — ``array('I')``, ascending within each node's run (the
  builders emit hubs in rank order, so a 2-hop query stays one sorted
  merge);
* ``hub_dists`` — ``array('q')`` when every stored distance is an
  integer, ``array('d')`` otherwise.

This is the layout IS-LABEL and Hop-Doubling report as the thing that
makes intersection queries and index loading fast at scale: one machine
word per field, contiguous runs, no per-entry object headers.  A packed
store answers the same read protocol as
:class:`~repro.labeling.hub_labels.HubLabeling` (``query``,
``iter_rank_entries``, ``rank_arrays``, ...), so PLL / PSL / CT query
paths run unchanged on either backend.  The store is immutable: the
mutating calls of the dict backend (``append_entry``, ``drop_label``)
raise :class:`~repro.exceptions.StorageError`; convert back with
:meth:`to_hub_labeling` to edit.
"""

from __future__ import annotations

import sys
from array import array
from collections.abc import Iterable

from repro.exceptions import StorageError
from repro.graphs.graph import INF, Graph, Weight

#: Typecodes of the shared arrays (documented in ``docs/formats.md``).
OFFSET_TYPECODE = "q"
RANK_TYPECODE = "I"
INT_DIST_TYPECODE = "q"
FLOAT_DIST_TYPECODE = "d"

#: Typecodes describing float layouts.  Anything else held by a flat
#: store is an integer family — the builders pack 8-byte words, while a
#: v4 binary snapshot may adopt narrower integer arrays (see
#: ``docs/formats.md``), so consumers test membership here instead of
#: comparing against one typecode.
FLOAT_TYPECODES = ("f", "d")


def pack_distances(values: Iterable[Weight]) -> array:
    """Pack distances into ``array('q')`` when all-int, ``array('d')`` otherwise.

    Infinite or fractional values force the float layout (``inf`` is
    representable in a double, not in a signed 64-bit slot).
    """
    values = list(values)
    if all(isinstance(value, int) for value in values):
        return array(INT_DIST_TYPECODE, values)
    return array(FLOAT_DIST_TYPECODE, values)


class FlatLabelStore:
    """Immutable CSR view of a 2-hop labeling over nodes ``0 .. n-1``.

    Build one with :meth:`from_store` (packs a
    :class:`~repro.labeling.hub_labels.HubLabeling` or any compatible
    store) or :meth:`from_entries` / :meth:`from_arrays` (raw inputs,
    validated).  Instances compare equal when their order and packed
    entries match, whatever the distance typecode.
    """

    #: Marker read by ``storage_backend`` properties up the stack.
    storage_backend = "flat"

    __slots__ = ("_order", "_rank", "_offsets", "_hub_ranks", "_hub_dists", "_views")

    def __init__(
        self,
        order: array,
        rank: array,
        offsets: array,
        hub_ranks: array,
        hub_dists: array,
    ) -> None:
        """Wrap pre-validated arrays; use the ``from_*`` constructors."""
        self._order = order
        self._rank = rank
        self._offsets = offsets
        self._hub_ranks = hub_ranks
        self._hub_dists = hub_dists
        # Lazily built, kernel-owned NumPy views (repro.kernels.views);
        # safe to cache forever because the store is immutable.
        self._views = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_store(cls, store) -> "FlatLabelStore":
        """Pack any hub-label store exposing the read protocol."""
        if isinstance(store, cls):
            return store
        order = [store.node_of_rank(r) for r in range(store.n)]
        return cls.from_entries(
            order, (store.iter_rank_entries(v) for v in range(store.n))
        )

    @classmethod
    def from_entries(cls, order: list[int], entries_per_node) -> "FlatLabelStore":
        """Pack per-node ``(hub_rank, distance)`` iterables.

        ``entries_per_node`` yields one iterable per node ``0 .. n-1``;
        each must be sorted ascending by hub rank (the order every
        builder produces).
        """
        offsets = array(OFFSET_TYPECODE, [0])
        hub_ranks = array(RANK_TYPECODE)
        dists: list[Weight] = []
        for entries in entries_per_node:
            for hub_rank, dist in entries:
                hub_ranks.append(hub_rank)
                dists.append(dist)
            offsets.append(len(hub_ranks))
        return cls.from_arrays(order, offsets, hub_ranks, pack_distances(dists))

    @classmethod
    def adopt_arrays(
        cls, order, offsets, hub_ranks, hub_dists
    ) -> "FlatLabelStore":
        """Adopt pre-verified arrays as-is — the mmap snapshot path.

        Unlike :meth:`from_arrays` the inputs are *not* copied into
        fresh ``array.array`` objects and the per-entry ascending-rank
        scan is skipped: the caller (the binary snapshot loader) has
        already CRC-verified the bytes, and touching every entry here
        would page the whole mapping in at open.  Cheap structural
        invariants — array lengths, offset endpoints, and the order
        permutation (O(n), builds the inverse anyway) — are still
        checked, so a logically inconsistent table cannot produce a
        store whose accessors crash.
        """
        n = len(order)
        if len(offsets) != n + 1:
            raise StorageError(
                f"offset array has {len(offsets)} slots for {n} nodes "
                f"(expected {n + 1})"
            )
        if len(hub_ranks) != len(hub_dists):
            raise StorageError(
                f"{len(hub_ranks)} hub ranks but {len(hub_dists)} distances"
            )
        if offsets[0] != 0 or offsets[-1] != len(hub_ranks):
            raise StorageError(
                f"offsets span [{offsets[0]}, {offsets[-1]}] "
                f"but the store holds {len(hub_ranks)} entries"
            )
        rank = array(OFFSET_TYPECODE, [0]) * n
        seen = bytearray(n)
        for r, v in enumerate(order):
            if not 0 <= v < n or seen[v]:
                raise StorageError(f"order is not a permutation of 0..{n - 1}")
            seen[v] = 1
            rank[v] = r
        return cls(order, rank, offsets, hub_ranks, hub_dists)

    @classmethod
    def adopt_numpy_csr(
        cls, order, offsets, hub_ranks, hub_dists
    ) -> "FlatLabelStore":
        """Adopt NumPy CSR arrays from a vectorized builder — no entry scan.

        The construction-side counterpart of :meth:`adopt_arrays`: the
        vectorized PSL rounds (:mod:`repro.kernels.psl_rounds`) and the
        shared-memory fan-out (:mod:`repro.parallel.shm`) finish with
        the labels already in exactly this CSR shape, sorted and
        deduplicated by construction, so packing them through the
        per-entry ``append_entry`` loop would cost more than the rounds
        themselves on large cores.  The array payloads are copied once
        (``memcpy`` into the canonical ``array.array`` typecodes, so
        every downstream consumer — snapshots, fingerprints, kernels —
        sees native Python scalars, never NumPy ones) and only the
        cheap structural invariants are re-checked, with the order
        permutation validated vectorized.

        ``offsets`` must be int64, ``hub_ranks`` any integer dtype with
        values below ``2**32``, ``hub_dists`` int64 (hop counts).
        """
        import numpy as np

        order_np = np.ascontiguousarray(order, dtype=np.int64)
        offsets_np = np.ascontiguousarray(offsets, dtype=np.int64)
        ranks_np = np.ascontiguousarray(hub_ranks, dtype=np.uint32)
        dists_np = np.ascontiguousarray(hub_dists, dtype=np.int64)
        n = order_np.size
        if offsets_np.size != n + 1:
            raise StorageError(
                f"offset array has {offsets_np.size} slots for {n} nodes "
                f"(expected {n + 1})"
            )
        if ranks_np.size != dists_np.size:
            raise StorageError(
                f"{ranks_np.size} hub ranks but {dists_np.size} distances"
            )
        if n and (offsets_np[0] != 0 or offsets_np[-1] != ranks_np.size):
            raise StorageError(
                f"offsets span [{offsets_np[0]}, {offsets_np[-1]}] "
                f"but the store holds {ranks_np.size} entries"
            )
        seen = np.zeros(n, dtype=bool)
        if n:
            if order_np.min() < 0 or order_np.max() >= n:
                raise StorageError(f"order is not a permutation of 0..{n - 1}")
            seen[order_np] = True
            if not seen.all():
                raise StorageError(f"order is not a permutation of 0..{n - 1}")
        rank_np = np.empty(n, dtype=np.int64)
        rank_np[order_np] = np.arange(n, dtype=np.int64)

        def _as_array(typecode: str, arr) -> array:
            out = array(typecode)
            out.frombytes(arr.tobytes())
            return out

        return cls(
            _as_array(OFFSET_TYPECODE, order_np),
            _as_array(OFFSET_TYPECODE, rank_np),
            _as_array(OFFSET_TYPECODE, offsets_np),
            _as_array(RANK_TYPECODE, ranks_np),
            _as_array(INT_DIST_TYPECODE, dists_np),
        )

    @classmethod
    def from_arrays(
        cls, order, offsets, hub_ranks, hub_dists
    ) -> "FlatLabelStore":
        """Assemble from raw arrays, validating the CSR invariants.

        Raises :class:`StorageError` on ragged lengths, non-monotone
        offsets, or a run whose hubs are not strictly ascending — the
        guard that keeps a corrupt binary snapshot from being queried.
        """
        order = array(OFFSET_TYPECODE, order)
        offsets = array(OFFSET_TYPECODE, offsets)
        hub_ranks = (
            hub_ranks
            if isinstance(hub_ranks, array) and hub_ranks.typecode == RANK_TYPECODE
            else array(RANK_TYPECODE, hub_ranks)
        )
        if not isinstance(hub_dists, array):
            hub_dists = pack_distances(hub_dists)
        n = len(order)
        if len(offsets) != n + 1:
            raise StorageError(
                f"offset array has {len(offsets)} slots for {n} nodes "
                f"(expected {n + 1})"
            )
        if len(hub_ranks) != len(hub_dists):
            raise StorageError(
                f"{len(hub_ranks)} hub ranks but {len(hub_dists)} distances"
            )
        if offsets[0] != 0 or offsets[-1] != len(hub_ranks):
            raise StorageError(
                f"offsets span [{offsets[0]}, {offsets[-1]}] "
                f"but the store holds {len(hub_ranks)} entries"
            )
        rank = array(OFFSET_TYPECODE, [0]) * n
        seen = bytearray(n)
        for r, v in enumerate(order):
            if not 0 <= v < n or seen[v]:
                raise StorageError(f"order is not a permutation of 0..{n - 1}")
            seen[v] = 1
            rank[v] = r
        previous = 0
        for v in range(n):
            start, stop = offsets[v], offsets[v + 1]
            if start != previous or stop < start:
                raise StorageError(f"offsets are not monotone at node {v}")
            previous = stop
            last = -1
            for i in range(start, stop):
                hub = hub_ranks[i]
                if hub <= last or hub >= n:
                    raise StorageError(
                        f"label run of node {v} is not strictly ascending "
                        f"in rank (hub {hub} after {last})"
                    )
                last = hub
        return cls(order, rank, offsets, hub_ranks, hub_dists)

    def to_hub_labeling(self):
        """Unpack into a mutable :class:`~repro.labeling.hub_labels.HubLabeling`."""
        from repro.labeling.hub_labels import HubLabeling

        labels = HubLabeling(list(self._order))
        for v in range(self.n):
            for hub_rank, dist in self.iter_rank_entries(v):
                labels.append_entry(v, hub_rank, dist)
        return labels

    # ------------------------------------------------------------------
    # Structure (read protocol shared with HubLabeling)
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._order)

    @property
    def dists_typecode(self) -> str:
        """Distance array typecode: an integer code (``'q'``, or narrower
        when adopted from a v4 snapshot) for all-int distances, ``'d'``
        for the float layout."""
        return self._hub_dists.typecode

    def rank_of(self, v: int) -> int:
        """Rank of node ``v`` in the vertex order."""
        return self._rank[v]

    def node_of_rank(self, rank: int) -> int:
        """Node holding ``rank``."""
        return self._order[rank]

    def append_entry(self, v: int, hub_rank: int, dist: Weight) -> None:
        """Unsupported: flat stores are immutable."""
        raise StorageError(
            "FlatLabelStore is immutable; convert with to_hub_labeling() "
            "before appending entries"
        )

    def drop_label(self, v: int) -> None:
        """Unsupported: flat stores are immutable."""
        raise StorageError(
            "FlatLabelStore is immutable; convert with to_hub_labeling() "
            "before dropping labels"
        )

    def label_entries(self, v: int) -> list[tuple[int, Weight]]:
        """``(hub node, distance)`` pairs of ``v``'s label."""
        order = self._order
        return [(order[rank], dist) for rank, dist in self.iter_rank_entries(v)]

    def label_rank_map(self, v: int) -> dict[int, Weight]:
        """``hub rank -> distance`` dict of ``v``'s label."""
        return dict(self.iter_rank_entries(v))

    def iter_rank_entries(self, v: int):
        """Iterate over ``(hub_rank, distance)`` pairs of ``v``'s label."""
        start, stop = self._offsets[v], self._offsets[v + 1]
        ranks = self._hub_ranks
        dists = self._hub_dists
        for i in range(start, stop):
            yield ranks[i], dists[i]

    def rank_arrays(self, v: int):
        """The rank-sorted parallel arrays backing ``v``'s label.

        Returned as array slices (copies) — callers index and iterate
        them exactly like the dict backend's lists.
        """
        start, stop = self._offsets[v], self._offsets[v + 1]
        return self._hub_ranks[start:stop], self._hub_dists[start:stop]

    def label_size(self, v: int) -> int:
        """``|L_v|``."""
        return self._offsets[v + 1] - self._offsets[v]

    def max_label_size(self) -> int:
        """``l = max_v |L_v|`` — the paper's query-time driver."""
        offsets = self._offsets
        return max(
            (offsets[v + 1] - offsets[v] for v in range(self.n)), default=0
        )

    def total_entries(self) -> int:
        """Total number of stored entries (index size in entries)."""
        return len(self._hub_ranks)

    def resident_bytes(self) -> int:
        """Actual bytes held by the packed arrays (buffers + headers)."""
        return sum(
            sys.getsizeof(buf)
            for buf in (
                self._order,
                self._rank,
                self._offsets,
                self._hub_ranks,
                self._hub_dists,
            )
        )

    def csr_arrays(self) -> tuple[array, array, array, array]:
        """``(order, offsets, hub_ranks, hub_dists)`` backing arrays.

        Exposed for the binary snapshot writer; callers must not mutate.
        """
        return self._order, self._offsets, self._hub_ranks, self._hub_dists

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatLabelStore):
            return NotImplemented
        return (
            list(self._order) == list(other._order)
            and list(self._offsets) == list(other._offsets)
            and list(self._hub_ranks) == list(other._hub_ranks)
            and list(self._hub_dists) == list(other._hub_dists)
        )

    def __hash__(self) -> int:  # pragma: no cover - stores are not dict keys
        return id(self)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: int, t: int) -> Weight:
        """2-hop query: merge-based sorted intersection of two runs."""
        if s == t:
            return 0
        offsets = self._offsets
        ranks = self._hub_ranks
        dists = self._hub_dists
        i, i_stop = offsets[s], offsets[s + 1]
        j, j_stop = offsets[t], offsets[t + 1]
        best: Weight = INF
        while i < i_stop and j < j_stop:
            ra, rb = ranks[i], ranks[j]
            if ra == rb:
                total = dists[i] + dists[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif ra < rb:
                i += 1
            else:
                j += 1
        return best

    def query_with_map(self, label_map: dict[int, Weight], t: int) -> Weight:
        """Query between a materialized ``rank -> dist`` map and node ``t``."""
        start, stop = self._offsets[t], self._offsets[t + 1]
        ranks = self._hub_ranks
        dists = self._hub_dists
        best: Weight = INF
        get = label_map.get
        for i in range(start, stop):
            other = get(ranks[i])
            if other is not None:
                total = other + dists[i]
                if total < best:
                    best = total
        return best

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_two_hop_cover(self, graph: Graph, truth: list[list[Weight]]) -> None:
        """Assert the labeling answers every pair exactly (Definition 1)."""
        from repro.exceptions import QueryError

        for s in graph.nodes():
            for t in graph.nodes():
                expected = truth[s][t]
                got = self.query(s, t)
                if got != expected and not (got == INF and expected == INF):
                    raise QueryError(
                        f"2-hop cover violated at ({s}, {t}): labels give {got}, "
                        f"graph distance is {expected}"
                    )


def merge_intersection(ranks_a, dists_a, ranks_b, dists_b) -> Weight:
    """Two-pointer merge over two rank-sorted runs (lists or arrays).

    The flat backend's query kernel, exposed standalone so the property
    suite can pit it against the dict-based intersection on random runs.
    """
    best: Weight = INF
    i = j = 0
    len_a, len_b = len(ranks_a), len(ranks_b)
    while i < len_a and j < len_b:
        ra, rb = ranks_a[i], ranks_b[j]
        if ra == rb:
            total = dists_a[i] + dists_b[j]
            if total < best:
                best = total
            i += 1
            j += 1
        elif ra < rb:
            i += 1
        else:
            j += 1
    return best
