"""Compact label storage backends and binary index snapshots.

Two things live here:

* the **flat backend** — :class:`FlatLabelStore` (CSR 2-hop labels) and
  :class:`FlatTreeLabelStore` (CSR tree labels), selected with
  ``backend="flat"`` on every build entry point or after the fact via
  ``index.compact()``;
* the **binary snapshot format** (version 4) —
  :func:`save_ct_index_binary` / :func:`load_ct_index_binary`, a
  checksummed little-endian section file that loads by ``frombytes``
  instead of JSON parsing (layout in ``docs/formats.md``).

:mod:`repro.storage.sizing` measures what each backend actually holds
resident, which is what ``repro storage-bench`` records.
"""

from repro.storage.binary import (
    BINARY_FORMAT_VERSION,
    MAGIC,
    is_binary_snapshot,
    load_ct_index_binary,
    save_ct_index_binary,
)
from repro.storage.flat_labels import FlatLabelStore, merge_intersection
from repro.storage.flat_tree import FlatTreeLabelStore, TreeRunView
from repro.storage.sizing import (
    ct_resident_label_bytes,
    deep_container_bytes,
    hub_store_resident_bytes,
    tree_store_resident_bytes,
)

__all__ = [
    "BINARY_FORMAT_VERSION",
    "FlatLabelStore",
    "FlatTreeLabelStore",
    "MAGIC",
    "TreeRunView",
    "ct_resident_label_bytes",
    "deep_container_bytes",
    "hub_store_resident_bytes",
    "is_binary_snapshot",
    "load_ct_index_binary",
    "merge_intersection",
    "save_ct_index_binary",
    "tree_store_resident_bytes",
]
