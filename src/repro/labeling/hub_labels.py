"""Hub-label storage shared by PLL, PSL, and the CT core index.

A 2-hop labeling assigns every node a set of (hub, distance) pairs.  For
fast intersection the hubs are stored by *rank* (position in the vertex
order — rank 0 is the most important hub) in ascending-rank parallel
arrays, so a query is a single two-pointer merge.
"""

from __future__ import annotations

from repro.exceptions import QueryError
from repro.graphs.graph import INF, Graph, Weight


class HubLabeling:
    """Mutable 2-hop label store over nodes ``0 .. n-1``.

    Parameters
    ----------
    order:
        The vertex order: ``order[rank]`` is the node with that rank.
        Hubs are recorded by rank so labels sort in importance order.

    This is the mutable ``"dict"`` backend; a built labeling can be
    packed into the CSR ``"flat"`` backend
    (:class:`repro.storage.flat_labels.FlatLabelStore`), which answers
    the same read protocol from shared typed arrays.
    """

    #: Marker read by ``storage_backend`` properties up the stack.
    storage_backend = "dict"

    def __init__(self, order: list[int]) -> None:
        n = len(order)
        self._order = list(order)
        self._rank = [0] * n
        for rank, v in enumerate(order):
            self._rank[v] = rank
        self._hub_ranks: list[list[int]] = [[] for _ in range(n)]
        self._hub_dists: list[list[Weight]] = [[] for _ in range(n)]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._order)

    def rank_of(self, v: int) -> int:
        """Rank of node ``v`` in the vertex order."""
        return self._rank[v]

    def node_of_rank(self, rank: int) -> int:
        """Node holding ``rank``."""
        return self._order[rank]

    def append_entry(self, v: int, hub_rank: int, dist: Weight) -> None:
        """Append ``(hub_rank, dist)`` to ``v``'s label.

        Entries must arrive in ascending rank order per node (which the
        PLL/PSL builders guarantee by processing hubs in rank order).
        """
        ranks = self._hub_ranks[v]
        if ranks and hub_rank <= ranks[-1]:
            raise QueryError(
                f"label of node {v} must grow in ascending rank order "
                f"({hub_rank} after {ranks[-1]})"
            )
        ranks.append(hub_rank)
        self._hub_dists[v].append(dist)

    def label_entries(self, v: int) -> list[tuple[int, Weight]]:
        """``(hub node, distance)`` pairs of ``v``'s label."""
        return [
            (self._order[rank], dist)
            for rank, dist in zip(self._hub_ranks[v], self._hub_dists[v])
        ]

    def label_rank_map(self, v: int) -> dict[int, Weight]:
        """``hub rank -> distance`` dict of ``v``'s label."""
        return dict(zip(self._hub_ranks[v], self._hub_dists[v]))

    def iter_rank_entries(self, v: int):
        """Iterate over ``(hub_rank, distance)`` pairs of ``v``'s label."""
        return zip(self._hub_ranks[v], self._hub_dists[v])

    def rank_arrays(self, v: int) -> tuple[list[int], list[Weight]]:
        """The rank-sorted parallel arrays backing ``v``'s label.

        Exposed for cross-store queries (e.g. directed labelings merge an
        out-label against an in-label); callers must not mutate them.
        """
        return self._hub_ranks[v], self._hub_dists[v]

    def label_size(self, v: int) -> int:
        """``|L_v|``."""
        return len(self._hub_ranks[v])

    def max_label_size(self) -> int:
        """``l = max_v |L_v|`` — the paper's query-time driver."""
        return max((len(ranks) for ranks in self._hub_ranks), default=0)

    def total_entries(self) -> int:
        """Total number of stored entries (index size in entries)."""
        return sum(len(ranks) for ranks in self._hub_ranks)

    def drop_label(self, v: int) -> None:
        """Discard ``v``'s label set (used by the PSL* reduction)."""
        self._hub_ranks[v] = []
        self._hub_dists[v] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s: int, t: int) -> Weight:
        """2-hop query: min over shared hubs of the two distances."""
        if s == t:
            return 0
        return self.query_merge(
            self._hub_ranks[s], self._hub_dists[s], self._hub_ranks[t], self._hub_dists[t]
        )

    @staticmethod
    def query_merge(
        ranks_a: list[int],
        dists_a: list[Weight],
        ranks_b: list[int],
        dists_b: list[Weight],
    ) -> Weight:
        """Two-pointer merge of two rank-sorted label arrays."""
        best: Weight = INF
        i = j = 0
        len_a, len_b = len(ranks_a), len(ranks_b)
        while i < len_a and j < len_b:
            ra, rb = ranks_a[i], ranks_b[j]
            if ra == rb:
                total = dists_a[i] + dists_b[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif ra < rb:
                i += 1
            else:
                j += 1
        return best

    def query_with_map(self, label_map: dict[int, Weight], t: int) -> Weight:
        """Query between a materialized ``rank -> dist`` map and node ``t``.

        Used by the pruning step of the builders, where one side's label
        is reused across thousands of probes.
        """
        best: Weight = INF
        for rank, dist in zip(self._hub_ranks[t], self._hub_dists[t]):
            other = label_map.get(rank)
            if other is not None:
                total = other + dist
                if total < best:
                    best = total
        return best

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_two_hop_cover(self, graph: Graph, truth: list[list[Weight]]) -> None:
        """Assert the labeling answers every pair exactly (Definition 1).

        ``truth`` is the all-pairs distance matrix of ``graph``.  Raises
        :class:`QueryError` on the first wrong pair.  Quadratic; for
        tests only.
        """
        for s in graph.nodes():
            for t in graph.nodes():
                expected = truth[s][t]
                got = self.query(s, t)
                if got != expected and not (got == INF and expected == INF):
                    raise QueryError(
                        f"2-hop cover violated at ({s}, {t}): labels give {got}, "
                        f"graph distance is {expected}"
                    )
