"""H2H — hierarchical 2-hop labeling on the full MDE decomposition ([19]).

Every node stores its *global* distance to each ancestor on the MDE tree
decomposition; a query meets at the LCA bag, which by the separator
property (Lemma 1) intersects some shortest path.  Index size is
``O(n·h)`` where ``h`` is the decomposition height — great on road
networks (small treewidth), hopeless on core-periphery graphs, which is
exactly the comparison the paper draws in Section 3.3.

Construction runs the top-down dynamic program of [19] on the weighted
MDE deliverables: ``dist(v_i, x) = min_{u ∈ N_i} δ⁻(u) + dist(u, x)``,
where the inner distance is read from whichever of ``u`` and ``x`` is
deeper on the (totally ordered) ancestor chain.  With a *complete*
elimination the recorded ``δ⁻`` weights are (n-1)-local — i.e. global —
distances, which is what makes the DP exact (Lemma 15 with λ = n).
"""

from __future__ import annotations

import time

from repro.graphs.graph import INF, Graph, Weight
from repro.labeling.base import DistanceIndex, MemoryBudget
from repro.treedec.decomposition import TreeDecomposition, decomposition_from_elimination
from repro.treedec.elimination import minimum_degree_elimination
from repro.treedec.lca import ForestLCA


class H2HIndex(DistanceIndex):
    """A built H2H index."""

    method_name = "H2H"

    def __init__(
        self,
        decomposition: TreeDecomposition,
        distance_arrays: list[dict[int, Weight]],
        lca: ForestLCA,
    ) -> None:
        self.decomposition = decomposition
        #: distance_arrays[pos] maps each ancestor node of ``order[pos]``
        #: to its exact graph distance.
        self.distance_arrays = distance_arrays
        self._lca = lca

    @property
    def graph(self) -> Graph:
        return self.decomposition.graph

    def distance(self, s: int, t: int) -> Weight:
        if s == t:
            return 0
        pos_s = self.decomposition.position[s]
        pos_t = self.decomposition.position[t]
        if not self._lca.same_tree(pos_s, pos_t):
            return INF  # different connected components
        meet = self._lca.lca(pos_s, pos_t)
        # Ancestor fast path (the paper's query case 1): answer straight
        # from the descendant's distance array.
        if meet == pos_s:
            return self.distance_arrays[pos_t][s]
        if meet == pos_t:
            return self.distance_arrays[pos_s][t]
        best: Weight = INF
        for u in self.decomposition.bags[meet]:
            left = self._node_distance(pos_s, s, u)
            right = self._node_distance(pos_t, t, u)
            if left + right < best:
                best = left + right
        return best

    def size_entries(self) -> int:
        return sum(len(array) for array in self.distance_arrays)

    def height(self) -> int:
        """Height of the underlying decomposition (the index-size driver)."""
        return self.decomposition.height()

    def _node_distance(self, pos: int, node: int, ancestor: int) -> Weight:
        if node == ancestor:
            return 0
        return self.distance_arrays[pos][ancestor]


def build_h2h(graph: Graph, *, budget: MemoryBudget | None = None) -> H2HIndex:
    """Build an H2H index over ``graph``.

    ``budget`` bounds the modeled index size (raises
    :class:`~repro.exceptions.OverMemoryError` when exceeded).
    """
    started = time.perf_counter()
    if budget is None:
        budget = MemoryBudget.unlimited()

    elimination = minimum_degree_elimination(graph, bandwidth=None)
    decomposition = decomposition_from_elimination(elimination)
    n = len(decomposition.order)
    position = decomposition.position
    lca = ForestLCA(decomposition.parent)
    distance_arrays: list[dict[int, Weight]] = [{} for _ in range(n)]

    def chain_lookup(pos_a: int, node_a: int, pos_b: int, node_b: int) -> Weight:
        """Distance between two comparable chain nodes, reading the deeper one."""
        if node_a == node_b:
            return 0
        if pos_a < pos_b:
            return distance_arrays[pos_a][node_b]
        return distance_arrays[pos_b][node_a]

    # Top-down: ancestors (higher positions) are finished before any of
    # their descendants.
    order = decomposition.order
    for pos in range(n - 1, -1, -1):
        step = elimination.steps[pos]
        ancestors = decomposition.ancestors(pos)  # bag indexes, nearest first
        targets = [order[a] for a in ancestors]
        array = distance_arrays[pos]
        for x in targets:
            pos_x = position[x]
            best: Weight = INF
            for u in step.neighbors:
                du = step.local_distance[u]
                total = du + chain_lookup(position[u], u, pos_x, x)
                if total < best:
                    best = total
            array[x] = best
        budget.charge(len(targets))

    index = H2HIndex(decomposition, distance_arrays, lca)
    index.build_seconds = time.perf_counter() - started
    return index
