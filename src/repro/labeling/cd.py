"""CD — the core-tree-decomposition labeling baseline ([3], [22]).

CD uses the same core/forest split as CT-Index but stores **global**
distances everywhere: every bag of the forest keeps the exact pairwise
graph distances among its members, and the core keeps a full pairwise
matrix.  That makes queries a simple upward dynamic program over the bag
chain (``h_F`` hops), but costs ``O(n·m)`` index time (one BFS per node)
and a quadratic core matrix — exactly the failure mode Table 1 and
Exp 6 of the paper document.  It is implemented here as the faithful
comparison baseline.
"""

from __future__ import annotations

import time

from repro.graphs.graph import INF, Graph, Weight
from repro.graphs.traversal import single_source_distances
from repro.labeling.base import DistanceIndex, MemoryBudget
from repro.treedec.core_tree import CoreTreeDecomposition, core_tree_decomposition


class CDIndex(DistanceIndex):
    """A built CD index."""

    method_name = "CD"

    def __init__(
        self,
        decomposition: CoreTreeDecomposition,
        bag_distances: list[dict[tuple[int, int], Weight]],
        core_distances: dict[tuple[int, int], Weight],
    ) -> None:
        self.decomposition = decomposition
        #: bag_distances[pos]: exact graph distance for every member pair
        #: (a, b) with a < b of the bag at ``pos``.
        self.bag_distances = bag_distances
        #: core_distances[(a, b)] with a < b: pairwise core distances.
        self.core_distances = core_distances

    @property
    def graph(self) -> Graph:
        return self.decomposition.graph

    def size_entries(self) -> int:
        bag_part = sum(len(pairs) for pairs in self.bag_distances)
        return bag_part + len(self.core_distances)

    def distance(self, s: int, t: int) -> Weight:
        if s == t:
            return 0
        s_core = self.decomposition.is_core(s)
        t_core = self.decomposition.is_core(t)
        if s_core and t_core:
            return self._core_pair(s, t)
        if s_core:
            s, t = t, s
            s_core, t_core = t_core, s_core
        if t_core:
            chain = self._climb_to_root(s)
            interface = self.decomposition.interface_of(s)
            best: Weight = INF
            for u in interface:
                du = chain.get(u, INF)
                total = du + self._core_pair(u, t)
                if total < best:
                    best = total
            return best
        pos_s = self.decomposition.position[s]
        pos_t = self.decomposition.position[t]
        assert pos_s is not None and pos_t is not None
        if self.decomposition.same_tree(pos_s, pos_t):
            meet = self.decomposition.lca(pos_s, pos_t)
            map_s = self._climb(pos_s, stop=meet)
            map_t = self._climb(pos_t, stop=meet)
            best = INF
            for u in self.decomposition.bag_members(meet):
                total = map_s.get(u, INF) + map_t.get(u, INF)
                if total < best:
                    best = total
            return best
        map_s = self._climb_to_root(s)
        map_t = self._climb_to_root(t)
        interface_s = self.decomposition.interface_of(s)
        interface_t = self.decomposition.interface_of(t)
        best = INF
        for u in interface_s:
            du = map_s.get(u, INF)
            if du == INF:
                continue
            for w in interface_t:
                dw = map_t.get(w, INF)
                if dw == INF:
                    continue
                total = du + self._core_pair(u, w) + dw
                if total < best:
                    best = total
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _core_pair(self, a: int, b: int) -> Weight:
        if a == b:
            return 0
        key = (a, b) if a < b else (b, a)
        return self.core_distances.get(key, INF)

    def _bag_pair(self, pos: int, a: int, b: int) -> Weight:
        if a == b:
            return 0
        key = (a, b) if a < b else (b, a)
        return self.bag_distances[pos].get(key, INF)

    def _climb(self, pos: int, stop: int) -> dict[int, Weight]:
        """DP up the bag chain from ``pos`` to bag ``stop`` inclusive.

        Returns exact distances from the owner of bag ``pos`` to every
        member of bag ``stop``; intermediate hops use each bag's stored
        pairwise distances (the separator property keeps them exact).
        """
        node = self.decomposition.node_at(pos)
        members = self.decomposition.bag_members(pos)
        current = {u: self._bag_pair(pos, node, u) for u in members}
        while pos != stop:
            parent = self.decomposition.parent[pos]
            assert parent is not None  # stop is an ancestor, so we cannot run out
            parent_members = self.decomposition.bag_members(parent)
            shared = [u for u in parent_members if u in current]
            advanced: dict[int, Weight] = {}
            for y in parent_members:
                best: Weight = INF
                for x in shared:
                    total = current[x] + self._bag_pair(parent, x, y)
                    if total < best:
                        best = total
                advanced[y] = best
            current = advanced
            pos = parent
        return current

    def _climb_to_root(self, s: int) -> dict[int, Weight]:
        """Exact distances from forest node ``s`` to its root bag members."""
        pos = self.decomposition.position[s]
        assert pos is not None
        root = self.decomposition.tree_of(s)
        return self._climb(pos, stop=root)


def build_cd(
    graph: Graph,
    bandwidth: int,
    *,
    budget: MemoryBudget | None = None,
) -> CDIndex:
    """Build the CD baseline at the given ``bandwidth``.

    Runs one BFS/Dijkstra per graph node (the O(n·m) indexing cost the
    paper attributes to this family), filling each bag's pairwise
    distances and the core matrix.
    """
    started = time.perf_counter()
    if budget is None:
        budget = MemoryBudget.unlimited()
    decomposition = core_tree_decomposition(graph, bandwidth)

    # Occurrence lists: node -> positions of the bags containing it.
    occurrences: dict[int, list[int]] = {}
    for pos in range(decomposition.boundary):
        for v in decomposition.bag_members(pos):
            occurrences.setdefault(v, []).append(pos)

    core_set = set(decomposition.core_nodes)
    bag_distances: list[dict[tuple[int, int], Weight]] = [
        {} for _ in range(decomposition.boundary)
    ]
    core_distances: dict[tuple[int, int], Weight] = {}

    for v in graph.nodes():
        v_occurrences = occurrences.get(v, [])
        v_core = v in core_set
        if not v_occurrences and not v_core:
            continue
        dist = single_source_distances(graph, v)
        for pos in v_occurrences:
            pairs = bag_distances[pos]
            for u in decomposition.bag_members(pos):
                if u <= v:
                    continue
                d = dist[u]
                if d != INF:
                    pairs[(v, u)] = d
                    budget.charge()
        if v_core:
            for u in decomposition.core_nodes:
                if u <= v:
                    continue
                d = dist[u]
                if d != INF:
                    core_distances[(v, u)] = d
                    budget.charge()

    index = CDIndex(decomposition, bag_distances, core_distances)
    index.build_seconds = time.perf_counter() - started
    return index
