"""Pruned Landmark Labeling (Akiba et al., [2] in the paper).

PLL fixes a vertex order and runs one *pruned* search per node in order
of importance: when the search from root ``r`` reaches ``v`` at distance
``dv`` and the labels collected so far already certify
``dist(r, v) <= dv``, the branch is pruned; otherwise ``(r, dv)`` joins
``L_v``.  The result is a minimal-ish 2-hop cover whose query is a
sorted-merge over two label arrays.

Both the unweighted (pruned BFS) and weighted (pruned Dijkstra) variants
are provided — the CT core index runs the weighted variant on the
reduced graph ``G_{λ+1}`` whose edges carry λ-local distances.
"""

from __future__ import annotations

import heapq
import logging
import time
from collections import deque

from repro.graphs.graph import INF, Graph, Weight
from repro.labeling.base import (
    DistanceIndex,
    HubLabelBackendMixin,
    MemoryBudget,
    validate_backend,
)
from repro.labeling.hub_labels import HubLabeling
from repro.labeling.ordering import degree_order, validate_order
from repro.obs.tracing import span as obs_span, tracing_enabled

logger = logging.getLogger(__name__)


class PrunedLandmarkLabeling(HubLabelBackendMixin, DistanceIndex):
    """A built PLL index: thin façade over a hub-label store.

    ``labels`` is a :class:`HubLabeling` (dict backend) or a
    :class:`~repro.storage.flat_labels.FlatLabelStore` (flat backend);
    every query reads through the shared protocol, so the two are
    interchangeable (``compact()`` / ``to_dict_backend()`` convert).
    """

    method_name = "PLL"

    def __init__(self, graph: Graph, labels: HubLabeling, order: list[int]) -> None:
        self.graph = graph
        self.labels = labels
        self.order = order

    def distance(self, s: int, t: int) -> Weight:
        """Exact distance via label intersection (kernel-dispatched)."""
        return self._query_labels(s, t)

    def size_entries(self) -> int:
        return self.labels.total_entries()

    def max_label_size(self) -> int:
        """``l`` — drives the paper's O(l) query bound."""
        return self.labels.max_label_size()


def build_pll(
    graph: Graph,
    order: list[int] | None = None,
    *,
    budget: MemoryBudget | None = None,
    budget_exempt: frozenset[int] | None = None,
    workers: int | None = None,
    backend: str = "dict",
) -> PrunedLandmarkLabeling:
    """Build a PLL index on ``graph``.

    Parameters
    ----------
    graph:
        Input graph; weighted graphs use pruned Dijkstra.
    order:
        Vertex order (most important first); defaults to degree order.
    budget:
        Optional :class:`MemoryBudget`; exceeding it raises
        :class:`~repro.exceptions.OverMemoryError` mid-build.
    budget_exempt:
        Nodes whose label entries do not count against the budget —
        used by PSL*, whose local-minimum label sets exist only during
        construction and never reach the final index.
    workers:
        Accepted for signature parity with :func:`~repro.labeling.psl.
        build_psl` and :meth:`~repro.core.ct_index.CTIndex.build`; PLL's
        pruned searches are inherently sequential (each root's search
        prunes against every earlier root's finished label), so any
        value is validated and then runs the serial schedule.
    backend:
        Label storage of the returned index: ``"dict"`` (mutable
        per-node lists) or ``"flat"`` (CSR arrays, packed after the
        pruned searches finish).  Both answer identically.
    """
    validate_backend(backend)
    if workers is not None:
        from repro.parallel.pool import resolve_workers

        resolve_workers(workers)  # validate; PLL always runs serially
    started = time.perf_counter()
    with obs_span("labeling.pll", n=graph.n, m=graph.m) as pll_span:
        if order is None:
            order = degree_order(graph)
        else:
            validate_order(graph, order)
        if budget is None:
            budget = MemoryBudget.unlimited()
        if budget_exempt is None:
            budget_exempt = frozenset()
        labels = HubLabeling(order)
        if graph.unweighted:
            _build_unweighted(graph, labels, order, budget, budget_exempt)
        else:
            _build_weighted(graph, labels, order, budget, budget_exempt)
        index = PrunedLandmarkLabeling(graph, labels, order)
        if backend == "flat":
            index.compact()
        if tracing_enabled():
            pll_span.set(entries=labels.total_entries())
    index.build_seconds = time.perf_counter() - started
    logger.debug(
        "PLL built: n=%d m=%d entries=%d max_label=%d in %.3fs",
        graph.n,
        graph.m,
        labels.total_entries(),
        labels.max_label_size(),
        index.build_seconds,
    )
    return index


def _build_unweighted(
    graph: Graph,
    labels: HubLabeling,
    order: list[int],
    budget: MemoryBudget,
    budget_exempt: frozenset[int],
) -> None:
    """One pruned BFS per root, in rank order."""
    dist: list[Weight] = [INF] * graph.n
    for rank, root in enumerate(order):
        root_map = labels.label_rank_map(root)
        queue: deque[int] = deque([root])
        dist[root] = 0
        visited = [root]
        while queue:
            v = queue.popleft()
            dv = dist[v]
            if labels.query_with_map(root_map, v) <= dv:
                continue  # pruned: existing labels already cover (root, v)
            labels.append_entry(v, rank, dv)
            if v not in budget_exempt:
                budget.charge()
            nd = dv + 1
            for u in graph.neighbor_ids(v):
                if dist[u] == INF:
                    dist[u] = nd
                    visited.append(u)
                    queue.append(u)
        for v in visited:
            dist[v] = INF


def _build_weighted(
    graph: Graph,
    labels: HubLabeling,
    order: list[int],
    budget: MemoryBudget,
    budget_exempt: frozenset[int],
) -> None:
    """One pruned Dijkstra per root, in rank order."""
    dist: list[Weight] = [INF] * graph.n
    for rank, root in enumerate(order):
        root_map = labels.label_rank_map(root)
        heap: list[tuple[Weight, int]] = [(0, root)]
        dist[root] = 0
        visited = [root]
        while heap:
            dv, v = heapq.heappop(heap)
            if dv > dist[v]:
                continue  # stale entry
            if labels.query_with_map(root_map, v) <= dv:
                continue  # pruned
            labels.append_entry(v, rank, dv)
            if v not in budget_exempt:
                budget.charge()
            for u, w in graph.neighbors(v):
                nd = dv + w
                if nd < dist[u]:
                    if dist[u] == INF:
                        visited.append(u)
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        for v in visited:
            dist[v] = INF
