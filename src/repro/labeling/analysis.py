"""Anatomy of built labelings: label-size distributions and hub coverage.

The paper's size arguments are all about *where* the label entries live
(a few huge-core hubs vs many periphery nodes); this module measures
that anatomy so benches and notebooks can inspect it — which hubs carry
the index, how skewed the per-node label sizes are, and how a CT-Index's
entries split across the core, the ancestor chains, and the interfaces.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.core.ct_index import CTIndex
from repro.labeling.hub_labels import HubLabeling


@dataclasses.dataclass(frozen=True)
class LabelAnatomy:
    """Distributional summary of a 2-hop labeling."""

    total_entries: int
    max_label: int
    mean_label: float
    median_label: float
    p90_label: float
    top_hub_share: float  # fraction of entries naming the top-10 hubs

    def as_row(self) -> dict[str, object]:
        return {
            "entries": self.total_entries,
            "max_label": self.max_label,
            "mean_label": round(self.mean_label, 2),
            "median_label": self.median_label,
            "p90_label": self.p90_label,
            "top10_hub_share": round(self.top_hub_share, 3),
        }


def analyze_labels(labels: HubLabeling) -> LabelAnatomy:
    """Measure the label-size distribution and hub concentration."""
    sizes = [labels.label_size(v) for v in range(labels.n)]
    if not sizes:
        return LabelAnatomy(0, 0, 0.0, 0.0, 0.0, 0.0)
    hub_counts: dict[int, int] = {}
    for v in range(labels.n):
        for rank, _ in labels.iter_rank_entries(v):
            hub_counts[rank] = hub_counts.get(rank, 0) + 1
    total = sum(sizes)
    top10 = sum(sorted(hub_counts.values(), reverse=True)[:10])
    ordered = sorted(sizes)
    p90 = ordered[min(len(ordered) - 1, int(0.9 * len(ordered)))]
    return LabelAnatomy(
        total_entries=total,
        max_label=max(sizes),
        mean_label=total / len(sizes),
        median_label=float(statistics.median(sizes)),
        p90_label=float(p90),
        top_hub_share=(top10 / total) if total else 0.0,
    )


@dataclasses.dataclass(frozen=True)
class CTAnatomy:
    """Where a CT-Index's entries live (Theorem 2's three terms)."""

    core_entries: int
    ancestor_entries: int
    interface_entries: int

    @property
    def total(self) -> int:
        return self.core_entries + self.ancestor_entries + self.interface_entries

    def as_row(self) -> dict[str, object]:
        total = max(1, self.total)
        return {
            "core_entries": self.core_entries,
            "ancestor_entries": self.ancestor_entries,
            "interface_entries": self.interface_entries,
            "core_share": round(self.core_entries / total, 3),
        }


def analyze_ct_index(index: CTIndex) -> CTAnatomy:
    """Split a CT-Index's entries into core / ancestor / interface parts."""
    decomposition = index.decomposition
    ancestor_entries = 0
    interface_entries = 0
    for label in index.tree_index.labels:
        for target in label:
            if decomposition.position[target] is None:
                interface_entries += 1
            else:
                ancestor_entries += 1
    return CTAnatomy(
        core_entries=index.core_index.size_entries(),
        ancestor_entries=ancestor_entries,
        interface_entries=interface_entries,
    )
