"""Directed pruned landmark labeling.

The directed extension the paper alludes to in Section 2: every node
keeps two label sets —

* ``L_out(v)``: hubs ``h`` with the distance ``d(v, h)`` (v reaches h);
* ``L_in(v)``: hubs ``h`` with the distance ``d(h, v)`` (h reaches v) —

and ``dist(s, t) = min over shared hubs of d(s, h) + d(h, t)`` with
``h`` drawn from ``L_out(s) ∩ L_in(t)``.  Construction runs, per root in
rank order, one pruned *forward* search (filling the reached nodes'
``L_in``) and one pruned *backward* search (filling ``L_out``); the
pruning queries use the opposite-direction labels collected so far,
exactly mirroring the undirected PLL proof.
"""

from __future__ import annotations

import heapq
import time
from collections import deque

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import INF, Weight
from repro.labeling.base import DistanceIndex, MemoryBudget
from repro.labeling.hub_labels import HubLabeling


class DirectedPLL(DistanceIndex):
    """A built directed 2-hop labeling."""

    method_name = "PLL-directed"

    def __init__(
        self,
        graph: DiGraph,
        out_labels: HubLabeling,
        in_labels: HubLabeling,
        order: list[int],
    ) -> None:
        self.graph = graph
        #: out_labels[v]: hubs v reaches, with d(v, hub).
        self.out_labels = out_labels
        #: in_labels[v]: hubs reaching v, with d(hub, v).
        self.in_labels = in_labels
        self.order = order

    def distance(self, s: int, t: int) -> Weight:
        """Exact directed distance from ``s`` to ``t``."""
        if s == t:
            return 0
        out_ranks, out_dists = self.out_labels.rank_arrays(s)
        in_ranks, in_dists = self.in_labels.rank_arrays(t)
        return HubLabeling.query_merge(out_ranks, out_dists, in_ranks, in_dists)

    def size_entries(self) -> int:
        return self.out_labels.total_entries() + self.in_labels.total_entries()

    def max_label_size(self) -> int:
        return max(self.out_labels.max_label_size(), self.in_labels.max_label_size())


def build_directed_pll(
    graph: DiGraph,
    order: list[int] | None = None,
    *,
    budget: MemoryBudget | None = None,
) -> DirectedPLL:
    """Build a directed PLL index over ``graph``."""
    started = time.perf_counter()
    if order is None:
        # Degree order by total degree, the natural directed analogue.
        order = sorted(
            graph.nodes(), key=lambda v: (-(graph.out_degree(v) + graph.in_degree(v)), v)
        )
    if budget is None:
        budget = MemoryBudget.unlimited()
    out_labels = HubLabeling(order)
    in_labels = HubLabeling(order)

    for rank, root in enumerate(order):
        # Forward search from root: reached node v gains (root, d(root, v))
        # in L_in(v).  Prune when L_out(root) x L_in(v) already covers it.
        _pruned_search(
            graph,
            root,
            rank,
            source_labels=out_labels,
            target_labels=in_labels,
            forward=True,
            budget=budget,
        )
        # Backward search: reached v gains (root, d(v, root)) in L_out(v).
        _pruned_search(
            graph,
            root,
            rank,
            source_labels=in_labels,
            target_labels=out_labels,
            forward=False,
            budget=budget,
        )

    index = DirectedPLL(graph, out_labels, in_labels, order)
    index.build_seconds = time.perf_counter() - started
    return index


def _pruned_search(
    graph: DiGraph,
    root: int,
    rank: int,
    *,
    source_labels: HubLabeling,
    target_labels: HubLabeling,
    forward: bool,
    budget: MemoryBudget,
) -> None:
    """One pruned BFS/Dijkstra from ``root`` in the given direction.

    ``source_labels`` are the root-side labels consulted for pruning
    (L_out(root) on forward searches); ``target_labels`` receive the new
    entries (L_in(v) on forward searches).
    """
    root_map = source_labels.label_rank_map(root)
    neighbors = graph.out_neighbors if forward else graph.in_neighbors
    dist: dict[int, Weight] = {root: 0}
    if graph.unweighted:
        frontier: deque[int] = deque([root])
        popper = frontier.popleft
        pusher = frontier.append
        weighted = False
    else:
        heap: list[tuple[Weight, int]] = [(0, root)]
        weighted = True
    while True:
        if weighted:
            if not heap:
                break
            dv, v = heapq.heappop(heap)
            if dv > dist[v]:
                continue
        else:
            if not frontier:
                break
            v = popper()
            dv = dist[v]
        if target_labels.query_with_map(root_map, v) <= dv:
            continue  # pruned: existing 2-hop cover is as short
        target_labels.append_entry(v, rank, dv)
        budget.charge()
        for u, w in neighbors(v):
            nd = dv + w
            if nd < dist.get(u, INF):
                dist[u] = nd
                if weighted:
                    heapq.heappush(heap, (nd, u))
                else:
                    pusher(u)
