"""Shared interface and size model for every distance index in the library.

All indexes answer :meth:`DistanceIndex.distance` exactly and report
their size through a common model so the paper's size comparisons are
apples-to-apples: one stored label entry costs
:data:`BYTES_PER_ENTRY` = 8 bytes (a 4-byte hub id plus a 4-byte
distance, mirroring the C++ layout of the original implementation).
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Iterable

from repro.graphs.graph import Weight

#: Modeled bytes per stored (hub, distance) entry.
BYTES_PER_ENTRY = 8


@dataclasses.dataclass(frozen=True)
class IndexStats:
    """Size/time summary of a built index, used by the bench harness."""

    method: str
    entries: int
    bytes: int
    build_seconds: float
    extra: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def megabytes(self) -> float:
        """Modeled size in MB (10^6 bytes, as in the paper's figures)."""
        return self.bytes / 1e6

    def as_row(self) -> dict[str, object]:
        """Flatten for table rendering."""
        row: dict[str, object] = {
            "method": self.method,
            "entries": self.entries,
            "size_mb": round(self.megabytes, 3),
            "build_seconds": round(self.build_seconds, 4),
        }
        row.update(self.extra)
        return row


class DistanceIndex(abc.ABC):
    """An exact shortest-distance oracle over a fixed graph."""

    #: Human-readable method name ("PLL", "CT-20", ...); subclasses override.
    method_name = "index"

    #: Wall-clock seconds spent building; set by the build functions.
    build_seconds: float = 0.0

    @abc.abstractmethod
    def distance(self, s: int, t: int) -> Weight:
        """Exact distance between ``s`` and ``t`` (INF when disconnected)."""

    def distances_from(self, s: int, targets: Iterable[int]) -> list[Weight]:
        """One-to-many batch: distances from ``s`` to every target.

        The default implementation loops over :meth:`distance`; indexes
        with per-source state to share (e.g. :class:`~repro.core.ct_index.
        CTIndex`'s extension operation) and wrappers that intercept the
        batch (e.g. :class:`~repro.caching.CachedDistanceIndex`) override
        it.  Results align positionally with ``targets``.
        """
        distance = self.distance
        return [distance(s, t) for t in targets]

    def distances_batch(self, pairs: Iterable[tuple[int, int]]) -> list[Weight]:
        """Pairwise batch: one distance per ``(s, t)`` pair, in order.

        Default loops over :meth:`distance`; subclasses may exploit
        structure in the pair stream (shared sources, cached state).
        """
        distance = self.distance
        return [distance(s, t) for s, t in pairs]

    @abc.abstractmethod
    def size_entries(self) -> int:
        """Number of stored label entries."""

    def size_bytes(self) -> int:
        """Modeled index size in bytes."""
        return BYTES_PER_ENTRY * self.size_entries()

    def stats(self) -> IndexStats:
        """Bundle size and build time into an :class:`IndexStats`."""
        return IndexStats(
            method=self.method_name,
            entries=self.size_entries(),
            bytes=self.size_bytes(),
            build_seconds=self.build_seconds,
        )


#: Storage backends selectable on the build entry points.
LABEL_BACKENDS = ("dict", "flat")


def validate_backend(backend: str) -> str:
    """Check a ``backend=`` argument, returning it unchanged.

    Raises :class:`~repro.exceptions.IndexConstructionError` on anything
    but ``"dict"`` (mutable per-node lists / dicts) or ``"flat"`` (the
    CSR arrays of :mod:`repro.storage`).
    """
    if backend not in LABEL_BACKENDS:
        from repro.exceptions import IndexConstructionError

        raise IndexConstructionError(
            f"unknown storage backend {backend!r}; expected 'dict' or 'flat'"
        )
    return backend


class HubLabelBackendMixin:
    """Backend and kernel switching for indexes holding one hub store.

    Mixed into :class:`~repro.labeling.pll.PrunedLandmarkLabeling` and
    :class:`~repro.labeling.psl.ParallelShortestPathLabeling`: both keep
    every query reading through ``self.labels``, so converting the store
    in place converts the index.

    The mixin also resolves the query kernel (:mod:`repro.kernels`):
    queries go through :meth:`_query_labels` / the batch overrides,
    which dispatch to a vectorized
    :class:`~repro.kernels.label_kernels.NumpyLabelKernel` when the
    resolved kernel is ``"numpy"`` and to the store's scalar ``query``
    otherwise.  The resolved kernel is cached keyed on the label store's
    identity, so ``compact()`` / ``to_dict_backend()`` invalidate it for
    free.
    """

    #: Requested query kernel; instances override via :meth:`set_kernel`.
    _kernel_request = "auto"

    @property
    def storage_backend(self) -> str:
        """``"dict"`` or ``"flat"`` — how the labels are stored now."""
        return getattr(self.labels, "storage_backend", "dict")

    def compact(self):
        """Pack the labels into the CSR flat backend; returns ``self``."""
        from repro.storage.flat_labels import FlatLabelStore

        self.labels = FlatLabelStore.from_store(self.labels)
        return self

    def to_dict_backend(self):
        """Unpack the labels into the mutable dict backend; returns ``self``.

        An explicit ``kernel="numpy"`` request is demoted to ``"auto"``
        — the numpy kernel cannot read dict labels.
        """
        from repro.storage.flat_labels import FlatLabelStore

        if isinstance(self.labels, FlatLabelStore):
            self.labels = self.labels.to_hub_labeling()
        if self._kernel_request == "numpy":
            self._kernel_request = "auto"
        return self

    # -- Query kernels --------------------------------------------------

    @property
    def kernel(self) -> str:
        """The resolved query kernel: ``"numpy"`` or ``"python"``."""
        return "numpy" if self._label_kernel() is not None else "python"

    def set_kernel(self, kernel: str = "auto"):
        """Select the query kernel (``"auto"`` | ``"numpy"`` | ``"python"``).

        An explicit ``"numpy"`` that cannot be honoured (NumPy missing,
        dict backend) raises :class:`~repro.exceptions.
        ConfigurationError` immediately.  Returns ``self``.
        """
        from repro.kernels import resolve_kernel

        resolve_kernel(kernel, flat=self.storage_backend == "flat")
        self._kernel_request = kernel
        self.__dict__.pop("_kernel_cache", None)
        return self

    def _label_kernel(self):
        """The NumpyLabelKernel to query through, or None (python)."""
        cached = self.__dict__.get("_kernel_cache")
        if cached is not None and cached[0] is self.labels:
            return cached[1]
        from repro.kernels import resolve_kernel

        resolved = resolve_kernel(
            self._kernel_request, flat=self.storage_backend == "flat"
        )
        if resolved == "numpy":
            from repro.kernels.label_kernels import NumpyLabelKernel

            kernel = NumpyLabelKernel(self.labels)
        else:
            kernel = None
        self.__dict__["_kernel_cache"] = (self.labels, kernel)
        return kernel

    def _query_labels(self, s: int, t: int) -> Weight:
        """One 2-hop query through the resolved kernel."""
        from repro.kernels import record_kernel_queries

        kernel = self._label_kernel()
        if kernel is not None:
            record_kernel_queries("numpy")
            return kernel.query(s, t)
        record_kernel_queries("python")
        return self.labels.query(s, t)

    def distances_from(self, s: int, targets: Iterable[int]) -> list[Weight]:
        """One-to-many batch; vectorized under the numpy kernel."""
        kernel = self._label_kernel()
        if kernel is None:
            return super().distances_from(s, targets)
        from repro.kernels import record_kernel_queries

        targets = list(targets)
        record_kernel_queries("numpy", len(targets))
        return kernel.query_from(s, targets)

    def distances_batch(self, pairs: Iterable[tuple[int, int]]) -> list[Weight]:
        """Pairwise batch; grouped by source under the numpy kernel."""
        kernel = self._label_kernel()
        if kernel is None:
            return super().distances_batch(pairs)
        from repro.kernels import record_kernel_queries

        pairs = list(pairs)
        record_kernel_queries("numpy", len(pairs))
        return kernel.query_batch(pairs)


@dataclasses.dataclass
class MemoryBudget:
    """Construction-time size guard reproducing the paper's "OM" outcome.

    The budget tracks modeled entries; :meth:`charge` raises
    :class:`~repro.exceptions.OverMemoryError` as soon as the modeled
    byte size would exceed ``limit_bytes``.  ``limit_bytes=None`` means
    unlimited (every charge succeeds).
    """

    limit_bytes: int | None = None
    charged_entries: int = 0

    def charge(self, entries: int = 1) -> None:
        """Account for ``entries`` new label entries."""
        self.charged_entries += entries
        if self.limit_bytes is None:
            return
        modeled = self.charged_entries * BYTES_PER_ENTRY
        if modeled > self.limit_bytes:
            from repro.exceptions import OverMemoryError

            raise OverMemoryError(
                f"modeled index size {modeled} bytes exceeds the "
                f"{self.limit_bytes}-byte budget",
                modeled_bytes=modeled,
                limit_bytes=self.limit_bytes,
            )

    @classmethod
    def unlimited(cls) -> "MemoryBudget":
        """A budget that never triggers."""
        return cls(limit_bytes=None)

    @classmethod
    def from_megabytes(cls, megabytes: float) -> "MemoryBudget":
        """Budget of ``megabytes`` × 10^6 bytes."""
        return cls(limit_bytes=int(megabytes * 1e6))
