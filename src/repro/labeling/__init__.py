"""2-hop labelings and baseline distance indexes."""

from repro.labeling.analysis import CTAnatomy, LabelAnatomy, analyze_ct_index, analyze_labels
from repro.labeling.base import BYTES_PER_ENTRY, DistanceIndex, IndexStats, MemoryBudget
from repro.labeling.cd import CDIndex, build_cd
from repro.labeling.directed_pll import DirectedPLL, build_directed_pll
from repro.labeling.h2h import H2HIndex, build_h2h
from repro.labeling.hub_labels import HubLabeling
from repro.labeling.ordering import (
    degeneracy_based_order,
    degree_order,
    elimination_based_order,
    make_order,
    random_order,
)
from repro.labeling.pll import PrunedLandmarkLabeling, build_pll
from repro.labeling.psl import ParallelShortestPathLabeling, build_psl
from repro.labeling.psl_variants import (
    PslPlusIndex,
    PslStarIndex,
    build_psl_plus,
    build_psl_star,
)

__all__ = [
    "BYTES_PER_ENTRY",
    "CDIndex",
    "CTAnatomy",
    "DirectedPLL",
    "DistanceIndex",
    "H2HIndex",
    "HubLabeling",
    "IndexStats",
    "LabelAnatomy",
    "MemoryBudget",
    "ParallelShortestPathLabeling",
    "PrunedLandmarkLabeling",
    "PslPlusIndex",
    "PslStarIndex",
    "analyze_ct_index",
    "analyze_labels",
    "build_cd",
    "build_directed_pll",
    "build_h2h",
    "build_pll",
    "build_psl",
    "build_psl_plus",
    "build_psl_star",
    "degeneracy_based_order",
    "degree_order",
    "elimination_based_order",
    "make_order",
    "random_order",
]
