"""PSL — round-synchronous label propagation (Li et al., [17]).

PSL removes PLL's sequential root-by-root dependency: labels are built
*per distance level*.  Level 0 seeds every node with itself; at level
``k`` each node collects, from its neighbors' level ``k-1`` labels, the
hubs more important than itself, keeps the ones the current labels
cannot already cover at distance <= k, and commits them all at once.
On a parallel machine every node of a level is processed concurrently;
this implementation preserves the exact level-synchronous semantics
(each round's pruning only consults labels of strictly earlier rounds),
so label sets match the parallel algorithm's.  The per-level work is
factored into :func:`psl_level_additions` (pure, read-only gather) and
:func:`psl_commit_level` (synchronous commit) so the serial loop here
and the multiprocess fan-out in :mod:`repro.parallel.psl` run the same
code on the same data — which is what makes ``workers=N`` builds
byte-identical to serial ones.

PSL is defined on unweighted graphs (levels are hop counts).
"""

from __future__ import annotations

import time
from collections.abc import Iterable

import repro.obs as obs
from repro.exceptions import IndexConstructionError
from repro.graphs.graph import INF, Graph, Weight
from repro.kernels import KERNEL_AUTO, KERNEL_NUMPY, resolve_kernel
from repro.labeling.base import (
    DistanceIndex,
    HubLabelBackendMixin,
    MemoryBudget,
    validate_backend,
)
from repro.labeling.hub_labels import HubLabeling
from repro.labeling.ordering import degree_order, validate_order
from repro.obs.tracing import span as obs_span, tracing_enabled

#: Below this node count ``kernel="auto"`` keeps the pure-Python rounds:
#: the arrays' fixed setup cost dominates on tiny graphs (most test
#: fixtures and small cores), and both paths commit identical labels,
#: so the cutoff is purely a performance heuristic.
VECTORIZE_MIN_NODES = 64


class ParallelShortestPathLabeling(HubLabelBackendMixin, DistanceIndex):
    """A built PSL index (same query machinery and backends as PLL)."""

    method_name = "PSL"

    def __init__(
        self, graph: Graph, labels: HubLabeling, order: list[int], rounds: int
    ) -> None:
        self.graph = graph
        self.labels = labels
        self.order = order
        #: Number of propagation rounds executed (== diameter bound + 1).
        self.rounds = rounds

    def distance(self, s: int, t: int) -> Weight:
        return self._query_labels(s, t)

    def size_entries(self) -> int:
        return self.labels.total_entries()

    def max_label_size(self) -> int:
        return self.labels.max_label_size()


def psl_level_additions(
    graph: Graph,
    rank: list[int],
    order: list[int],
    label_maps: list[dict[int, int]],
    last_added: list[list[int]],
    level: int,
    nodes: Iterable[int],
) -> list[tuple[int, list[int]]]:
    """Phase 1 of one PSL round, restricted to ``nodes``.

    Gathers candidate hubs from neighbors' previous-round labels and
    prunes against the labels committed in strictly earlier rounds.
    Reads ``label_maps``/``last_added`` only — never writes — so any
    partition of the vertex set can be evaluated concurrently (this is
    the unit of work the multiprocess builder ships to its workers).

    Returns ``(v, accepted_hub_ranks)`` pairs for the nodes that gained
    labels, in ascending node order with each hub list sorted — a
    canonical form, so merged chunk results are independent of how the
    vertex set was partitioned.
    """
    additions: list[tuple[int, list[int]]] = []
    for v in nodes:
        own_rank = rank[v]
        own_map = label_maps[v]
        candidates: set[int] = set()
        for u in graph.neighbor_ids(v):
            for hub_rank in last_added[u]:
                if hub_rank < own_rank:
                    candidates.add(hub_rank)
        if not candidates:
            continue
        accepted: list[int] = []
        for hub_rank in sorted(candidates):
            if hub_rank in own_map:
                continue  # already covered at a smaller level
            hub_map = label_maps[order[hub_rank]]
            if _map_query(own_map, hub_map) <= level:
                continue  # pruned: existing 2-hop cover is as short
            accepted.append(hub_rank)
        if accepted:
            additions.append((v, accepted))
    return additions


def psl_commit_level(
    additions: list[tuple[int, list[int]]],
    label_maps: list[dict[int, int]],
    last_added: list[list[int]],
    level: int,
    *,
    budget: MemoryBudget,
    budget_exempt: frozenset[int],
) -> None:
    """Phase 2 of one PSL round: apply every node's additions at once.

    ``additions`` must be the (merged) output of
    :func:`psl_level_additions` over the whole vertex set.  Nodes absent
    from it have their ``last_added`` cleared — they contributed nothing
    this round and must not feed candidates into the next one.
    """
    for v in range(len(last_added)):
        last_added[v] = []
    for v, accepted in additions:
        last_added[v] = accepted
        own_map = label_maps[v]
        for hub_rank in accepted:
            own_map[hub_rank] = level
        if v not in budget_exempt:
            budget.charge(len(accepted))


def build_psl(
    graph: Graph,
    order: list[int] | None = None,
    *,
    budget: MemoryBudget | None = None,
    budget_exempt: frozenset[int] | None = None,
    workers: int | None = None,
    backend: str = "dict",
    kernel: str = KERNEL_AUTO,
    pool=None,
) -> ParallelShortestPathLabeling:
    """Build a PSL index on an unweighted ``graph``.

    ``budget_exempt`` nodes' label entries do not count against the
    budget (see :func:`repro.labeling.pll.build_pll`).

    ``workers`` selects the construction schedule: ``None``/``1`` runs
    the rounds in-process; ``N > 1`` evaluates each round's gather phase
    across ``N`` worker processes (``0`` means one per CPU).  Every
    schedule commits identical labels — see :mod:`repro.parallel`.

    ``backend`` selects the label storage of the returned index
    (``"dict"`` or ``"flat"``); like ``workers``, it never changes an
    answer.

    ``kernel`` selects the construction path (see :mod:`repro.kernels`):
    ``"numpy"`` runs every round vectorized over CSR frontier arrays
    (:mod:`repro.kernels.psl_rounds`), ``"python"`` the per-vertex dict
    rounds, and ``"auto"`` (default) vectorizes when NumPy is installed
    and the graph is large enough for the arrays to pay off.  The two
    switches compose: a vectorized build with ``workers > 1`` partitions
    each round's candidate generation by destination-vertex range across
    a shared-memory worker pool (:mod:`repro.parallel.shm`) — the
    persistent pool and shared label blocks replace PR 2's per-round
    snapshot pickling — while ``workers > 1`` without NumPy (or with
    ``kernel="python"``) falls back to the multiprocess python rounds of
    :mod:`repro.parallel.psl`.  Like every other kernel switch, none of
    this changes a label: all paths build fingerprint-identical indexes.

    ``pool`` (internal) lets :func:`repro.core.construction.construct`
    share one live :class:`~repro.parallel.shm.ShmBuildPool` across the
    forest and core phases; without one, a vectorized multi-worker build
    spins up its own pool for the duration of the call.
    """
    validate_backend(backend)
    if not graph.unweighted:
        raise IndexConstructionError(
            "PSL propagates labels by hop level and needs an unweighted graph; "
            "use PLL (pruned Dijkstra) for weighted graphs"
        )
    started = time.perf_counter()
    if order is None:
        order = degree_order(graph)
    else:
        validate_order(graph, order)
    if budget is None:
        budget = MemoryBudget.unlimited()
    if budget_exempt is None:
        budget_exempt = frozenset()

    from repro.parallel.pool import resolve_workers

    worker_count = resolve_workers(workers)
    # An explicit "numpy" request always vectorizes (resolve_kernel
    # raised already if NumPy is missing); "auto" additionally requires
    # the graph to be big enough for the array setup to pay off.  A
    # vectorized build composes with workers > 1 through the
    # shared-memory fan-out; a python-kernel build with workers > 1
    # keeps the PR 2 multiprocess rounds.
    resolved = resolve_kernel(kernel, flat=True)
    vectorize = resolved == KERNEL_NUMPY and (
        kernel == KERNEL_NUMPY or graph.n >= VECTORIZE_MIN_NODES
    )

    rank = [0] * graph.n
    for r, v in enumerate(order):
        rank[v] = r

    # Level 0: every node is its own hub at distance 0.
    for v in graph.nodes():
        if v not in budget_exempt:
            budget.charge()

    with obs_span(
        "labeling.psl",
        n=graph.n,
        m=graph.m,
        workers=worker_count,
        kernel=KERNEL_NUMPY if vectorize else "python",
    ) as psl_span:
        if vectorize:
            round_stats: dict = {}
            if worker_count > 1:
                from repro.parallel.shm import ShmBuildPool, run_shm_rounds

                if pool is not None:
                    lab_keys, lab_dists, lab_indptr, level = run_shm_rounds(
                        graph,
                        rank,
                        order,
                        pool=pool,
                        budget=budget,
                        budget_exempt=budget_exempt,
                        stats_out=round_stats,
                    )
                else:
                    with ShmBuildPool(worker_count) as own_pool:
                        lab_keys, lab_dists, lab_indptr, level = run_shm_rounds(
                            graph,
                            rank,
                            order,
                            pool=own_pool,
                            budget=budget,
                            budget_exempt=budget_exempt,
                            stats_out=round_stats,
                        )
            else:
                from repro.kernels.psl_rounds import run_numpy_rounds_csr

                lab_keys, lab_dists, lab_indptr, level = run_numpy_rounds_csr(
                    graph,
                    rank,
                    order,
                    budget=budget,
                    budget_exempt=budget_exempt,
                    stats_out=round_stats,
                )
            if backend == "flat":
                # The rounds finished in CSR shape; adopt the arrays
                # instead of replaying millions of append_entry calls.
                import numpy as np

                from repro.storage.flat_labels import FlatLabelStore

                labels = FlatLabelStore.adopt_numpy_csr(
                    order, lab_indptr, lab_keys % np.int64(graph.n), lab_dists
                )
            else:
                from repro.kernels.psl_rounds import labels_to_lists

                hub_ranks, hub_dists = labels_to_lists(
                    graph.n, lab_keys, lab_dists, lab_indptr
                )
                labels = HubLabeling(order)
                for v in graph.nodes():
                    for hub_rank, dist in zip(hub_ranks[v], hub_dists[v]):
                        labels.append_entry(v, hub_rank, dist)
        else:
            round_stats = {}
            # label_maps[v]: rank -> dist, the committed labels of v.
            label_maps: list[dict[int, int]] = [{rank[v]: 0} for v in graph.nodes()]
            # Hubs committed in the previous round, per node.
            last_added: list[list[int]] = [[rank[v]] for v in graph.nodes()]

            if worker_count > 1:
                from repro.parallel.psl import run_parallel_rounds

                level = run_parallel_rounds(
                    graph,
                    rank,
                    order,
                    label_maps,
                    last_added,
                    workers=worker_count,
                    budget=budget,
                    budget_exempt=budget_exempt,
                )
            else:
                level = 0
                while True:
                    level += 1
                    # Phase 1 (parallel-for over nodes): gather candidate
                    # hubs from neighbors' previous-round labels and prune
                    # against the labels committed so far (levels < current).
                    with obs_span("labeling.psl.level", level=level) as level_span:
                        additions = psl_level_additions(
                            graph,
                            rank,
                            order,
                            label_maps,
                            last_added,
                            level,
                            graph.nodes(),
                        )
                        if tracing_enabled():
                            level_span.set(
                                additions=sum(len(hubs) for _, hubs in additions)
                            )
                    if not additions:
                        break
                    # Phase 2 (synchronous commit): apply every node's
                    # additions.
                    psl_commit_level(
                        additions,
                        label_maps,
                        last_added,
                        level,
                        budget=budget,
                        budget_exempt=budget_exempt,
                    )

            labels = HubLabeling(order)
            for v in graph.nodes():
                for hub_rank in sorted(label_maps[v]):
                    labels.append_entry(v, hub_rank, label_maps[v][hub_rank])
        index = ParallelShortestPathLabeling(graph, labels, order, rounds=level)
        #: Per-round kernel/merge time split of the vectorized paths
        #: (None on the python rounds); scale-bench reports it.
        index.round_stats = round_stats or None
        if backend == "flat":
            index.compact()
        if tracing_enabled():
            psl_span.set(rounds=level, entries=labels.total_entries())
    if obs.enabled():
        metrics = obs.registry()
        metrics.counter("psl.builds").inc()
        metrics.counter("psl.rounds").inc(level)
    index.build_seconds = time.perf_counter() - started
    return index


def _map_query(map_a: dict[int, int], map_b: dict[int, int]) -> Weight:
    """2-hop query over two ``rank -> dist`` dicts."""
    if len(map_a) > len(map_b):
        map_a, map_b = map_b, map_a
    best: Weight = INF
    for hub_rank, da in map_a.items():
        db = map_b.get(hub_rank)
        if db is not None and da + db < best:
            best = da + db
    return best
