"""Vertex orders for landmark-based labelings.

PLL's label size depends heavily on the order in which nodes become
hubs.  The paper uses degree order for scale-free graphs (the standard
PLL choice) and mentions the tree-decomposition-based order behind its
theoretical bound (Theorem 4.4 of [2]); both are provided, plus a random
order as a worst-ish-case control.
"""

from __future__ import annotations

import random

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def degree_order(graph: Graph) -> list[int]:
    """Nodes by descending degree (ties by node id) — the PLL default."""
    return sorted(graph.nodes(), key=lambda v: (-graph.degree(v), v))


def degeneracy_based_order(graph: Graph) -> list[int]:
    """Reverse min-degree-peeling order.

    The node peeled *last* sits deepest in the core and is ranked most
    important.  This approximates the elimination-based order behind the
    paper's ``O(n log n · tw)`` PLL bound without paying for a full MDE
    run with fill-in.
    """
    from repro.graphs.statistics import degeneracy_ordering

    order, _ = degeneracy_ordering(graph)
    return list(reversed(order))


def elimination_based_order(graph: Graph) -> list[int]:
    """Reverse MDE elimination order (Theorem 4.4 of [2]).

    Nodes eliminated late (the high-treewidth core) become the most
    important hubs.  Costs a full MDE run with clique fill-in, so use on
    graphs whose width is moderate.
    """
    from repro.treedec.elimination import minimum_degree_elimination

    result = minimum_degree_elimination(graph, bandwidth=None)
    return list(reversed(result.eliminated_order()))


def psl_rank_order(graph: Graph) -> list[int]:
    """Degree order refined by total neighbor degree (ties by node id).

    On scale-free cores plain degree order leaves large plateaus of
    equal-degree nodes whose relative rank is decided by node id — an
    arbitrary choice that hop-doubling composition is sensitive to (its
    per-round candidate mass tracks how early the true connectors become
    hubs).  Breaking those ties toward nodes whose *neighborhoods* carry
    more edge mass is a one-pass 2-hop centrality proxy: same O(m) cost
    as degree order, no distance computations, still deterministic.
    Exactness is unaffected — any hub order yields a correct canonical
    2-hop cover — so the knob only moves construction cost and label
    size (``hopdb_order="psl-rank"``; the scale-bench ablation measures
    whether it closes the rmat gap vs in-process PSL).
    """
    neighbor_mass = {
        v: sum(graph.degree(u) for u in graph.neighbor_ids(v)) for v in graph.nodes()
    }
    return sorted(
        graph.nodes(), key=lambda v: (-graph.degree(v), -neighbor_mass[v], v)
    )


def random_order(graph: Graph, seed: int) -> list[int]:
    """Uniform random order (control / stress testing)."""
    order = list(graph.nodes())
    random.Random(seed).shuffle(order)
    return order


def validate_order(graph: Graph, order: list[int]) -> None:
    """Raise :class:`GraphError` unless ``order`` permutes the node set."""
    if sorted(order) != list(graph.nodes()):
        raise GraphError("vertex order is not a permutation of the node set")


ORDER_STRATEGIES = {
    "degree": degree_order,
    "degeneracy": degeneracy_based_order,
    "elimination": elimination_based_order,
    "psl-rank": psl_rank_order,
}


def make_order(graph: Graph, strategy: str = "degree") -> list[int]:
    """Resolve an order strategy by name."""
    try:
        factory = ORDER_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(ORDER_STRATEGIES))
        raise GraphError(f"unknown order strategy {strategy!r}; known: {known}") from None
    return factory(graph)
