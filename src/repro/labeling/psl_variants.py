"""PSL+ and PSL* — the index-reduction baselines of Section 7.

* **PSL+** applies *equivalence relation elimination*: twin nodes (equal
  neighborhoods) are folded to one representative before labeling, and
  queries are mapped back through the reduction.
* **PSL*** additionally applies *local minimal set elimination*: a node
  ranked below all of its neighbors never needs its own label set — at
  query time the set is restored on the fly as the min-shift of its
  neighbors' labels (plus the trivial self hub).  Neighbors of such a
  node are never themselves eliminated, so restoration always reads
  stored labels.

Both variants accept a ``backend``: ``"pll"`` (pruned searches — the
default, fastest sequentially) or ``"psl"`` (round-synchronous
propagation, the paper's parallel formulation).  The label sets agree;
only construction scheduling differs.
"""

from __future__ import annotations

import time

from repro.exceptions import IndexConstructionError
from repro.graphs.graph import INF, Graph, Weight
from repro.graphs.reductions import EquivalenceReduction, eliminate_equivalent_nodes
from repro.labeling.base import DistanceIndex, MemoryBudget
from repro.labeling.hub_labels import HubLabeling
from repro.labeling.pll import build_pll
from repro.labeling.psl import build_psl

_BACKENDS = ("pll", "psl")


class PslPlusIndex(DistanceIndex):
    """PSL with equivalence relation elimination (PSL+)."""

    method_name = "PSL+"

    def __init__(
        self,
        reduction: EquivalenceReduction,
        labels: HubLabeling,
        order: list[int],
    ) -> None:
        self.reduction = reduction
        self.labels = labels
        self.order = order

    @property
    def graph(self) -> Graph:
        """The original (unreduced) graph."""
        return self.reduction.original

    def distance(self, s: int, t: int) -> Weight:
        rs = self.reduction.representative[s]
        rt = self.reduction.representative[t]
        if rs == rt:
            return self.reduction.map_distance(s, t, 0)
        return self.labels.query(rs, rt)

    def size_entries(self) -> int:
        return self.labels.total_entries()


class PslStarIndex(DistanceIndex):
    """PSL+ plus local minimal set elimination (PSL*)."""

    method_name = "PSL*"

    def __init__(
        self,
        reduction: EquivalenceReduction,
        labels: HubLabeling,
        order: list[int],
        dropped: list[bool],
    ) -> None:
        self.reduction = reduction
        self.labels = labels
        self.order = order
        #: dropped[v] is True when reduced-node v's label set was elided.
        self.dropped = dropped

    @property
    def graph(self) -> Graph:
        """The original (unreduced) graph."""
        return self.reduction.original

    @property
    def dropped_count(self) -> int:
        """How many reduced-graph label sets were elided."""
        return sum(self.dropped)

    def distance(self, s: int, t: int) -> Weight:
        rs = self.reduction.representative[s]
        rt = self.reduction.representative[t]
        if rs == rt:
            return self.reduction.map_distance(s, t, 0)
        return self._reduced_distance(rs, rt)

    def size_entries(self) -> int:
        return self.labels.total_entries()

    def _reduced_distance(self, s: int, t: int) -> Weight:
        s_dropped = self.dropped[s]
        t_dropped = self.dropped[t]
        if not s_dropped and not t_dropped:
            return self.labels.query(s, t)
        if s_dropped and t_dropped:
            map_s = self._restore_map(s)
            map_t = self._restore_map(t)
            return _dict_query(map_s, map_t)
        if t_dropped:
            s, t = t, s
        map_s = self._restore_map(s)
        return self.labels.query_with_map(map_s, t)

    def _restore_map(self, v: int) -> dict[int, Weight]:
        """Rebuild ``L_v`` as ``rank -> dist`` from the neighbors' labels."""
        graph = self.reduction.reduced
        restored: dict[int, Weight] = {self.labels.rank_of(v): 0}
        for u, w in graph.neighbors(v):
            for hub_rank, dist in self.labels.iter_rank_entries(u):
                candidate = dist + w
                old = restored.get(hub_rank)
                if old is None or candidate < old:
                    restored[hub_rank] = candidate
        return restored


def build_psl_plus(
    graph: Graph,
    *,
    backend: str = "pll",
    budget: MemoryBudget | None = None,
    workers: int | None = None,
) -> PslPlusIndex:
    """Build PSL+ (equivalence elimination, then 2-hop labeling).

    ``workers`` is forwarded to the PSL backend (ignored by PLL, whose
    pruned searches are sequential by construction).
    """
    started = time.perf_counter()
    reduction, labels, order = _build_reduced_labels(graph, backend, budget, workers=workers)
    index = PslPlusIndex(reduction, labels, order)
    index.build_seconds = time.perf_counter() - started
    return index


def build_psl_star(
    graph: Graph,
    *,
    backend: str = "pll",
    budget: MemoryBudget | None = None,
    workers: int | None = None,
) -> PslStarIndex:
    """Build PSL* (equivalence + local minimal set elimination).

    The local-minimum set depends only on the vertex order, so it is
    computed up front and its members' (construction-only) labels are
    exempted from the memory budget — the final index never stores them,
    and neither did the paper's PSL*.
    """
    started = time.perf_counter()
    reduction, labels, order = _build_reduced_labels(
        graph, backend, budget, exempt_factory=_local_minimum_nodes, workers=workers
    )
    reduced = reduction.reduced
    dropped_set = _local_minimum_nodes(reduced, order)
    dropped = [False] * reduced.n
    for v in dropped_set:
        dropped[v] = True
        labels.drop_label(v)
    index = PslStarIndex(reduction, labels, order, dropped)
    index.build_seconds = time.perf_counter() - started
    return index


def _local_minimum_nodes(graph: Graph, order: list[int]) -> frozenset[int]:
    """Nodes ranked below every neighbor (their labels can be elided)."""
    rank = [0] * graph.n
    for r, v in enumerate(order):
        rank[v] = r
    dropped = []
    for v in graph.nodes():
        neighbors = graph.neighbor_ids(v)
        if neighbors and all(rank[v] > rank[u] for u in neighbors):
            dropped.append(v)
    return frozenset(dropped)


def _build_reduced_labels(
    graph: Graph,
    backend: str,
    budget: MemoryBudget | None,
    *,
    exempt_factory=None,
    workers: int | None = None,
) -> tuple[EquivalenceReduction, HubLabeling, list[int]]:
    if backend not in _BACKENDS:
        raise IndexConstructionError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    from repro.labeling.ordering import degree_order

    reduction = eliminate_equivalent_nodes(graph)
    reduced = reduction.reduced
    order = degree_order(reduced)
    exempt = exempt_factory(reduced, order) if exempt_factory is not None else None
    if backend == "psl" and reduced.unweighted:
        built = build_psl(
            reduced, order, budget=budget, budget_exempt=exempt, workers=workers
        )
    else:
        built = build_pll(reduced, order, budget=budget, budget_exempt=exempt)
    return reduction, built.labels, built.order


def _dict_query(map_a: dict[int, Weight], map_b: dict[int, Weight]) -> Weight:
    if len(map_a) > len(map_b):
        map_a, map_b = map_b, map_a
    best: Weight = INF
    for hub_rank, da in map_a.items():
        db = map_b.get(hub_rank)
        if db is not None and da + db < best:
            best = da + db
    return best
