"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch one type to shield themselves from any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation receives bad nodes."""


class GraphFormatError(GraphError):
    """Raised when an edge-list file cannot be parsed."""


class DecompositionError(ReproError):
    """Raised when a tree decomposition is invalid or cannot be produced."""


class IndexConstructionError(ReproError):
    """Raised when a distance index cannot be built from its inputs."""


class OverMemoryError(IndexConstructionError):
    """Raised when construction exceeds a configured memory budget.

    This mirrors the "OM" (out-of-memory) outcome in the paper's
    experiments: an index whose modeled size exceeds the budget is
    abandoned mid-construction rather than completed.
    """

    def __init__(self, message: str, modeled_bytes: int, limit_bytes: int) -> None:
        super().__init__(message)
        self.modeled_bytes = modeled_bytes
        self.limit_bytes = limit_bytes


class ConfigurationError(ReproError, ValueError):
    """Raised when a public entry point receives an invalid argument value.

    Covers bad knob values (worker counts, workload fractions, quantiles,
    unknown experiment or format names) as opposed to malformed *data*
    (see :class:`GraphError` / :class:`SerializationError`).  Subclasses
    :class:`ValueError` so callers that predate the unified hierarchy and
    catch ``ValueError`` keep working.
    """


class DynamicUpdateError(ReproError):
    """Raised when a dynamic-overlay operation cannot be honoured.

    Covers stale snapshots handed to a hot swap, verification failures
    on a freshly rebuilt index, and wrapping a base index that does not
    expose its graph (see :mod:`repro.dynamic`).
    """


class QueryError(ReproError):
    """Raised when a distance query is issued against an unusable index."""


class SerializationError(ReproError):
    """Raised when an index cannot be saved to or loaded from disk."""


class StorageError(ReproError):
    """Raised when a label store is used against its backend's contract.

    The compact (CSR) stores of :mod:`repro.storage` are immutable once
    packed; mutating calls raise this instead of corrupting the shared
    arrays.  It also flags malformed array inputs (non-monotone offsets,
    unsorted hub runs) when a store is assembled from raw buffers.
    """


__all__ = [
    "ConfigurationError",
    "DecompositionError",
    "DynamicUpdateError",
    "GraphError",
    "GraphFormatError",
    "IndexConstructionError",
    "OverMemoryError",
    "QueryError",
    "ReproError",
    "SerializationError",
    "StorageError",
]
