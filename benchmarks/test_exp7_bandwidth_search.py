"""Exp 7 / Figure 14 — determining the bandwidth under a memory limit.

Paper shape: a larger memory limit yields a smaller chosen d, reaching
d = 0 once the full 2-hop labeling fits; the search completes within a
small number of construction probes.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import exp7_bandwidth_search
from repro.core.bandwidth import find_bandwidth


def test_exp7_bandwidth_search(benchmark, save_table):
    rows, text = exp7_bandwidth_search()
    print("\n" + text)
    save_table("exp7_bandwidth_search", text)

    by_dataset: dict[str, list[dict]] = {}
    for row in rows:
        by_dataset.setdefault(str(row["dataset"]), []).append(row)
    for dataset, sweep in by_dataset.items():
        chosen = [int(str(r["chosen_d"])) for r in sweep]
        # Larger memory => no larger d (monotone non-increasing).
        for earlier, later in zip(chosen, chosen[1:]):
            assert later <= earlier, f"{dataset}: chosen d not monotone {chosen}"
        # The most generous limit lets the pure 2-hop labeling fit.
        assert chosen[-1] == 0, f"{dataset}: largest limit still needs d={chosen[-1]}"
        # Every found index respects its limit.
        for row in sweep:
            assert float(str(row["final_size_mb"])) <= float(str(row["memory_mb"]))

    graph = load_dataset("talk")
    benchmark.pedantic(
        lambda: find_bandwidth(graph, int(1e6)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
