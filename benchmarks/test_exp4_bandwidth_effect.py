"""Exp 4 / Figure 10 — the effect of the bandwidth d.

Paper shapes: index size falls as d grows, with the marginal gain
shrinking toward d = 100 (Figure 10a); index time does not explode
(10b); query time rises only mildly and stays sub-millisecond (10c).
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import EXP4_BANDWIDTHS, exp4_bandwidth_effect
from repro.core.ct_index import CTIndex


def test_exp4_bandwidth_effect(benchmark, save_table):
    rows, text = exp4_bandwidth_effect()
    print("\n" + text)
    save_table("exp4_bandwidth_effect", text)
    from repro.bench.charts import horizontal_bar_chart
    from repro.bench.reporting import pivot

    wide = pivot(rows, "d", "dataset", "size_mb")
    chart = horizontal_bar_chart(
        wide,
        label="d",
        series=[str(r["dataset"]) for r in rows[:: len(EXP4_BANDWIDTHS)]],
        title="Figure 10(a) analogue — index size (MB) vs bandwidth d",
    )
    save_table("exp4_bandwidth_effect_chart", chart)

    by_dataset: dict[str, dict[int, dict]] = {}
    for row in rows:
        by_dataset.setdefault(str(row["dataset"]), {})[int(str(row["d"]))] = row

    for dataset, sweep in by_dataset.items():
        sizes = {
            d: float(str(sweep[d]["size_mb"]))
            for d in EXP4_BANDWIDTHS
            if sweep[d]["size_mb"] != "OM"
        }
        if 0 in sizes and 100 in sizes:
            # The d=100 index is substantially smaller than d=0 (Figure 10a).
            assert sizes[100] < sizes[0] * 0.7, f"{dataset}: {sizes}"
        queries = {
            d: float(str(sweep[d]["query_s"]))
            for d in EXP4_BANDWIDTHS
            if sweep[d]["query_s"] != "OM"
        }
        # Query time stays far below a millisecond at every d (Figure 10c).
        assert all(q < 1e-3 for q in queries.values()), f"{dataset}: {queries}"

    graph = load_dataset("dblp")
    benchmark.pedantic(
        lambda: CTIndex.build(graph, 50), rounds=1, iterations=1, warmup_rounds=0
    )
