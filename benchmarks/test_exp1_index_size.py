"""Exp 1 / Figure 7 — index size of PSL+ (CT-0), CT-20, CT-100, PSL*.

Paper shape being reproduced: CT-100 is the only method that completes
on every graph; PSL+ runs out of memory on the 6 largest, PSL* and
CT-20 on the 2 largest; where PSL+ completes, CT-100 is severalfold
smaller.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import exp1_index_size
from repro.bench.runner import MAIN_METHODS, main_sweep
from repro.core.ct_index import CTIndex


def test_exp1_index_size(benchmark, save_table):
    rows, text = exp1_index_size()
    print("\n" + text)
    save_table("exp1_index_size", text)
    from repro.bench.charts import horizontal_bar_chart
    from repro.bench.runner import MAIN_METHODS

    chart = horizontal_bar_chart(
        rows,
        label="dataset",
        series=list(MAIN_METHODS),
        title="Figure analogue — index size (MB)",
    )
    save_table("exp1_index_size_chart", chart)

    results = main_sweep()
    by_key = {(r.dataset, r.method): r for r in results}
    # CT-100 completes on every dataset (the paper's headline claim).
    assert all(by_key[(row["dataset"], "CT-100")].ok for row in rows)
    # The largest graphs reproduce the OM pattern.
    assert not by_key[("uk07", "PSL+ (CT-0)")].ok
    assert not by_key[("uk07", "CT-20")].ok
    assert not by_key[("uk07", "PSL*")].ok
    # Where PSL+ completes, CT-100 is smaller.
    completed = [
        (by_key[(r.dataset, "PSL+ (CT-0)")], by_key[(r.dataset, "CT-100")])
        for r in results
        if r.method == "CT-100" and by_key[(r.dataset, "PSL+ (CT-0)")].ok
    ]
    assert all(ct.size_mb < psl.size_mb for psl, ct in completed)

    # Representative costed operation behind this figure: one CT-100 build.
    graph = load_dataset("talk")
    benchmark.pedantic(
        lambda: CTIndex.build(graph, 100), rounds=1, iterations=1, warmup_rounds=0
    )
