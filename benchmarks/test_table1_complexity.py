"""Table 1 — labelings with tree decomposition, measured.

Paper shape (Table 1 columns, empirically): H2H's index grows with
n·(decomposition height) and is the largest on core-periphery graphs;
CD pays O(n·m) index *time*; CT keeps both index size and time low and
answers with O(d) core probes per query (its "4 hops").
"""

from __future__ import annotations

import zlib

from repro.bench.experiments import table1_complexity
from repro.bench.runner import build_method
from repro.bench.workloads import random_pairs
from repro.bench.datasets import dataset_spec
from repro.graphs.generators.core_periphery import core_periphery_graph, scaled_config


def test_table1_complexity(benchmark, save_table):
    rows, text = table1_complexity()
    print("\n" + text)
    save_table("table1_complexity", text)

    by_cell = {(int(str(r["n"])), str(r["method"])): r for r in rows}
    sizes = sorted({int(str(r["n"])) for r in rows})
    largest = sizes[-1]
    h2h = by_cell[(largest, "H2H")]
    cd = by_cell[(largest, "CD-20")]
    ct = by_cell[(largest, "CT-20")]
    assert "entries" in ct and "entries" in h2h and "entries" in cd
    # CT's index is the smallest of the three on the largest instance.
    assert int(str(ct["entries"])) < int(str(h2h["entries"]))
    assert int(str(ct["entries"])) < int(str(cd["entries"]))
    # CD's O(n·m) indexing is the slowest.
    assert float(str(cd["index_s"])) > float(str(ct["index_s"]))

    graph = core_periphery_graph(scaled_config(dataset_spec("dblp").config, 0.1), seed=777)
    index = build_method("H2H", graph)
    workload = random_pairs(graph, 500, seed=zlib.crc32(b"table1-bench"))

    def run_queries():
        for s, t in workload.pairs:
            index.distance(s, t)

    benchmark(run_queries)
