"""Supplementary — core/forest anatomy vs bandwidth (paper footnotes 2-3).

The paper's structural claims behind the trade-off: interfaces never
exceed d nodes, the boundary λ grows with d, and the forest height h_F
stays modest over the whole d <= 100 range (footnote 3: average below
600 on the real graphs).
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import structure_profile
from repro.treedec.core_tree import core_tree_decomposition


def test_structure_profile(benchmark, save_table):
    rows, text = structure_profile()
    print("\n" + text)
    save_table("structure_profile", text)

    by_dataset: dict[str, list[dict]] = {}
    for row in rows:
        by_dataset.setdefault(str(row["dataset"]), []).append(row)
    for dataset, sweep in by_dataset.items():
        lambdas = [int(str(r["lambda"])) for r in sweep]
        # λ is non-decreasing in d.
        assert lambdas == sorted(lambdas), (dataset, lambdas)
        for row in sweep:
            d = int(str(row["d"]))
            assert int(str(row["max_interface"])) <= d
            # h_F stays modest (paper footnote 3; our graphs are ~10^3
            # nodes, so "modest" means well below the boundary size).
            if d > 0:
                assert int(str(row["h_F"])) < max(1, int(str(row["lambda"])))

    graph = load_dataset("fb")
    benchmark.pedantic(
        lambda: core_tree_decomposition(graph, 50), rounds=1, iterations=1, warmup_rounds=0
    )
