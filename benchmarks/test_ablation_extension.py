"""Ablation (DESIGN.md §5) — the extension operation of Lemma 9.

CT queries in Cases 3-4 can either materialize extended label sets
(O(d) core-label scans) or enumerate the interface Cartesian product
(O(d²) core queries).  Lemma 9 proves they agree; this bench shows the
extension's probe count advantage.
"""

from __future__ import annotations

import zlib

from repro.bench.datasets import load_dataset
from repro.bench.experiments import ablation_extension
from repro.bench.workloads import random_pairs
from repro.core.ct_index import CTIndex


def test_ablation_extension(benchmark, save_table):
    rows, text = ablation_extension()
    print("\n" + text)
    save_table("ablation_extension", text)

    by_variant = {str(r["variant"]): r for r in rows}
    ext_probes = float(str(by_variant["extension (Lemma 9)"]["core_probes_per_query"]))
    naive_probes = float(str(by_variant["naive 4-hop product"]["core_probes_per_query"]))
    # The extension needs strictly fewer core probes (O(d) vs O(d²)).
    assert ext_probes < naive_probes

    graph = load_dataset("epin")
    index = CTIndex.build(graph, 50)
    workload = random_pairs(graph, 500, seed=zlib.crc32(b"ablation-ext"))

    def run_extension_queries():
        for s, t in workload.pairs:
            index.distance(s, t)

    benchmark(run_extension_queries)
