"""Exp 2 / Figure 8 — index construction time.

Paper shape: CT construction is faster than PSL+ wherever PSL+
completes (the paper reports up to 21.85× on SINA; factors here are
smaller because our synthetic graphs are smaller, but the direction
must hold on the larger entries).
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import exp2_index_time
from repro.bench.runner import main_sweep
from repro.core.ct_index import CTIndex


def test_exp2_index_time(benchmark, save_table):
    rows, text = exp2_index_time()
    print("\n" + text)
    save_table("exp2_index_time", text)
    from repro.bench.charts import horizontal_bar_chart
    from repro.bench.runner import MAIN_METHODS

    chart = horizontal_bar_chart(
        rows,
        label="dataset",
        series=list(MAIN_METHODS),
        title="Figure analogue — index time (s)",
    )
    save_table("exp2_index_time_chart", chart)

    results = main_sweep()
    by_key = {(r.dataset, r.method): r for r in results}
    # On the larger completed graphs, CT-100 builds at least as fast as
    # PSL+ (generous 1.2x slack absorbs timer noise on small graphs).
    for dataset in ("fb", "lj", "twit"):
        psl = by_key[(dataset, "PSL+ (CT-0)")]
        ct = by_key[(dataset, "CT-100")]
        assert ct.build_seconds <= psl.build_seconds * 1.2, (
            f"CT-100 slower than PSL+ on {dataset}: "
            f"{ct.build_seconds:.2f}s vs {psl.build_seconds:.2f}s"
        )

    graph = load_dataset("epin")
    benchmark.pedantic(
        lambda: CTIndex.build(graph, 100), rounds=1, iterations=1, warmup_rounds=0
    )
