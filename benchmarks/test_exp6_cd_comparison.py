"""Exp 6 / Table 3 — CT-Index vs the CD core-tree baseline.

Paper shape: on the two smallest graphs CD's index is an order of
magnitude larger and orders of magnitude slower to build than
CT-Index, and CD runs out of memory on everything bigger.
"""

from __future__ import annotations

import zlib

from repro.bench.datasets import load_dataset
from repro.bench.experiments import exp6_cd_comparison
from repro.bench.runner import build_method
from repro.bench.workloads import random_pairs


def test_exp6_cd_comparison(benchmark, save_table):
    rows, text = exp6_cd_comparison()
    print("\n" + text)
    save_table("exp6_cd_comparison", text)

    by_cell = {(str(r["dataset"]), str(r["method"])): r for r in rows}
    for dataset in ("talk", "epin"):
        cd = by_cell[(dataset, "CD-100")]
        ct = by_cell[(dataset, "CT-100")]
        assert cd["size_mb"] != "OM" and ct["size_mb"] != "OM"
        # CD is much larger and much slower to build (Table 3).
        assert float(str(cd["size_mb"])) > 3 * float(str(ct["size_mb"]))
        assert float(str(cd["index_s"])) > 5 * float(str(ct["index_s"]))
    # CD hits OM on the next-larger dataset under the benchmark budget
    # (the paper: 28 of 30 graphs).
    assert by_cell[("dblp", "CD-100")]["size_mb"] == "OM"

    graph = load_dataset("talk")
    index = build_method("CD-100", graph)
    workload = random_pairs(graph, 200, seed=zlib.crc32(b"exp6-bench"))

    def run_queries():
        for s, t in workload.pairs:
            index.distance(s, t)

    benchmark(run_queries)
