"""Exp 3 / Figure 9 — average query time over random workloads.

Paper shape: PSL+ is fastest, PSL* sits in between, CT pays a mild
premium that stays far below a millisecond even on the largest graph
(the paper reports 0.39 ms on UK07 at d = 100).
"""

from __future__ import annotations

import zlib

from repro.bench.datasets import load_dataset
from repro.bench.experiments import exp3_query_time
from repro.bench.runner import build_method, main_sweep
from repro.bench.workloads import random_pairs


def test_exp3_query_time(benchmark, save_table):
    rows, text = exp3_query_time()
    print("\n" + text)
    save_table("exp3_query_time", text)
    from repro.bench.charts import horizontal_bar_chart
    from repro.bench.runner import MAIN_METHODS

    chart = horizontal_bar_chart(
        rows,
        label="dataset",
        series=list(MAIN_METHODS),
        title="Figure analogue — query time (s)",
    )
    save_table("exp3_query_time_chart", chart)

    results = main_sweep()
    by_key = {(r.dataset, r.method): r for r in results}
    for result in results:
        if result.ok:
            # Every completed method answers in well under a millisecond.
            assert result.query_seconds < 1e-3, (
                f"{result.method} on {result.dataset}: {result.query_seconds:.2e}s/query"
            )
    # PSL+ is the query-time winner wherever it completes (paper: CT-100
    # is on average 7.55x slower).
    for dataset in ("talk", "epin", "fb", "twit"):
        psl = by_key[(dataset, "PSL+ (CT-0)")]
        ct = by_key[(dataset, "CT-100")]
        assert psl.query_seconds < ct.query_seconds

    graph = load_dataset("lj")
    index = build_method("CT-100", graph)
    workload = random_pairs(graph, 1000, seed=zlib.crc32(b"exp3-bench"))

    def run_queries():
        distance = index.distance
        for s, t in workload.pairs:
            distance(s, t)

    benchmark(run_queries)
