"""Ablation (DESIGN.md §5) — the hub order of the CT core labeling.

The paper's theory (Theorem 4.4 of [2], used by Lemma 5/12) assumes an
elimination-derived hub order; practice (PSL) uses degree order.  Both
yield exact answers; this bench compares their core-label footprint.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import ablation_ct_core_order
from repro.core.ct_index import CTIndex


def test_ablation_ct_core_order(benchmark, save_table):
    rows, text = ablation_ct_core_order()
    print("\n" + text)
    save_table("ablation_ct_core_order", text)

    by_order = {str(r["core_order"]): r for r in rows}
    # Both orders produce a working index of comparable size (within 3x).
    degree_entries = int(str(by_order["degree"]["core_entries"]))
    elimination_entries = int(str(by_order["elimination"]["core_entries"]))
    assert degree_entries > 0 and elimination_entries > 0
    ratio = max(degree_entries, elimination_entries) / min(
        degree_entries, elimination_entries
    )
    assert ratio < 3.0, (degree_entries, elimination_entries)

    graph = load_dataset("talk")
    benchmark.pedantic(
        lambda: CTIndex.build(graph, 20, core_order="elimination"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
