"""Shared fixtures for the benchmark harness.

Every bench regenerates one table/figure of the paper; the rendered
tables are printed to the captured output *and* persisted under
``results/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def save_table():
    """Persist a rendered experiment table under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text, encoding="utf-8")
        return path

    return _save
