"""Supplementary — the label anatomy behind Theorem 2's size terms.

As ``d`` grows, entries migrate from the core 2-hop labels into the
tree-index's ancestor-chain and interface terms; the core's share of
the index falls accordingly.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import label_anatomy
from repro.core.ct_index import CTIndex
from repro.labeling.analysis import analyze_ct_index


def test_label_anatomy(benchmark, save_table):
    rows, text = label_anatomy()
    print("\n" + text)
    save_table("label_anatomy", text)

    by_d = {int(str(r["d"])): r for r in rows}
    # At d=0 the index is 100% core; with d the core share strictly falls.
    assert float(str(by_d[0]["core_share"])) == 1.0
    shares = [float(str(by_d[d]["core_share"])) for d in sorted(by_d)]
    assert shares == sorted(shares, reverse=True), shares
    # The tree terms appear once d > 0.
    assert int(str(by_d[100]["ancestor_entries"])) > 0
    assert int(str(by_d[100]["interface_entries"])) > 0

    graph = load_dataset("talk")
    index = CTIndex.build(graph, 20)
    benchmark(lambda: analyze_ct_index(index))
