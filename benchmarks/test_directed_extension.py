"""Supplementary — the directed CT-Index extension (Section 2 remark).

Shape check: the core/forest split pays off for directed graphs the way
it does for undirected ones — the directed CT-Index undercuts the plain
directed 2-hop labeling on a follows-style digraph while staying exact
(exactness is asserted exhaustively in tests/directed/).
"""

from __future__ import annotations

from repro.bench.experiments import directed_extension
from repro.directed.ct import build_directed_ct_index
from repro.graphs.digraph import DiGraph


def test_directed_extension(benchmark, save_table):
    rows, text = directed_extension()
    print("\n" + text)
    save_table("directed_extension", text)

    by_method = {str(r["method"]): r for r in rows}
    pll_entries = int(str(by_method["directed PLL"]["entries"]))
    ct_rows = [r for name, r in by_method.items() if name.startswith("directed CT-")]
    assert ct_rows, "no directed CT rows produced"
    # At least one bandwidth beats the flat directed labeling.
    assert any(int(str(r["entries"])) < pll_entries for r in ct_rows), rows
    # Everything stays sub-millisecond.
    assert all(float(str(r["query_s"])) < 1e-3 for r in rows)

    arcs = [(i, (i + 1) % 60) for i in range(60)] + [(i, (i + 7) % 60) for i in range(60)]
    digraph = DiGraph.from_arcs(60, arcs)
    benchmark.pedantic(
        lambda: build_directed_ct_index(digraph, 3), rounds=1, iterations=1, warmup_rounds=0
    )
