"""Lemma 3 / Figure 3 — the Ω(n·d) lower bound on 2-hop index size.

Paper claim: on the rolling-cliques gadget (treewidth >= d-1), *any*
2-hop labeling stores Ω(n·d) entries.  Empirically, PLL's entry count
divided by n·d stays bounded below by a positive constant as n and d
grow — the index genuinely scales with the treewidth, which is the
whole motivation for CT-Index.
"""

from __future__ import annotations

from repro.bench.experiments import lemma3_lower_bound
from repro.graphs.generators.worst_case import rolling_cliques_graph
from repro.labeling.pll import build_pll


def test_lemma3_lower_bound(benchmark, save_table):
    rows, text = lemma3_lower_bound()
    print("\n" + text)
    save_table("lemma3_lower_bound", text)

    ratios = [float(str(r["entries_per_nd"])) for r in rows]
    # The per-(n·d) density is bounded below: the index is Ω(n·d).
    assert min(ratios) > 0.15, f"ratios collapsed: {ratios}"
    # And it does not blow past O(n·d·log n) either (sanity upper bound).
    assert max(ratios) < 5.0, f"ratios exploded: {ratios}"

    graph = rolling_cliques_graph(6, 16)
    benchmark.pedantic(lambda: build_pll(graph), rounds=1, iterations=1, warmup_rounds=0)
