"""Ablation — PLL vs PSL construction schedule (paper line 33, [17]).

Both schedules produce identical canonical label sets under the same
vertex order; this bench records their (single-threaded) build costs.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import ablation_psl_backend
from repro.graphs.reductions import eliminate_equivalent_nodes
from repro.labeling.psl import build_psl


def test_ablation_psl_backend(benchmark, save_table):
    rows, text = ablation_psl_backend()
    print("\n" + text)
    save_table("ablation_psl_backend", text)

    entries = {str(r["backend"]): int(str(r["entries"])) for r in rows}
    values = list(entries.values())
    # The two schedules build identical label sets (same total size).
    assert values[0] == values[1], entries

    reduced = eliminate_equivalent_nodes(load_dataset("talk")).reduced
    benchmark.pedantic(lambda: build_psl(reduced), rounds=1, iterations=1, warmup_rounds=0)
