"""Exp 5 / Figures 11-13 — scalability over 20%..100% induced subgraphs.

Paper shape: size, index time, and query time all grow smoothly with
the node fraction for every method; CT stays below PSL+ in size at
every fraction where PSL+ completes.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import exp5_scalability
from repro.bench.workloads import node_fractions
from repro.core.ct_index import CTIndex


def test_exp5_scalability(benchmark, save_table):
    rows, text = exp5_scalability()
    print("\n" + text)
    save_table("exp5_scalability", text)

    # Per (dataset, method): completed sizes must be non-decreasing-ish in
    # the fraction (smooth growth; 10% slack for twin-folding noise).
    series: dict[tuple[str, str], list[float]] = {}
    for row in rows:
        if row["size_mb"] == "OM":
            continue
        key = (str(row["dataset"]), str(row["method"]))
        series.setdefault(key, []).append(float(str(row["size_mb"])))
    for key, sizes in series.items():
        for smaller, larger in zip(sizes, sizes[1:]):
            assert larger >= smaller * 0.9, f"{key}: sizes shrank {sizes}"

    # CT-20 never exceeds a completed PSL+ at the same fraction.  (CT-100
    # can exceed PSL+ on the tiniest 20% subgraphs, whose cores are nearly
    # empty — the paper never evaluates CT-100 at that scale.)
    by_cell = {
        (str(r["dataset"]), str(r["fraction"]), str(r["method"])): r for r in rows
    }
    for (dataset, fraction, method), row in by_cell.items():
        if method != "PSL+ (CT-0)" or row["size_mb"] == "OM":
            continue
        ct_row = by_cell[(dataset, fraction, "CT-20")]
        if ct_row["size_mb"] != "OM":
            assert float(str(ct_row["size_mb"])) <= float(str(row["size_mb"])), (
                dataset,
                fraction,
            )

    graph = load_dataset("dblp")
    nodes = node_fractions(graph, [0.4], seed=123)[0]
    subgraph, _ = graph.induced_subgraph(nodes)
    benchmark.pedantic(
        lambda: CTIndex.build(subgraph, 20), rounds=1, iterations=1, warmup_rounds=0
    )
