"""Ablation (DESIGN.md §5) — vertex order for the 2-hop labeling.

PLL's index size hinges on the hub order (Section 3.4).  Degree order
is the paper's practical choice; this bench compares it against the
degeneracy-based order and a random-order control.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import ablation_core_order
from repro.labeling.ordering import degree_order
from repro.labeling.pll import build_pll


def test_ablation_ordering(benchmark, save_table):
    rows, text = ablation_core_order()
    print("\n" + text)
    save_table("ablation_ordering", text)

    entries = {str(r["order"]): int(str(r["entries"])) for r in rows}
    # A structure-aware order beats the random control.
    assert min(entries["degree"], entries["degeneracy"]) < entries["random"]

    graph = load_dataset("talk")
    order = degree_order(graph)
    benchmark.pedantic(
        lambda: build_pll(graph, order), rounds=1, iterations=1, warmup_rounds=0
    )
