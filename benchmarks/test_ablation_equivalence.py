"""Ablation (DESIGN.md §5) — equivalence relation elimination inside CT.

The paper folds twin nodes before indexing ("we have integrated it into
our proposed CT-Index").  This bench quantifies what the folding buys:
fewer indexed nodes and a smaller index at equal answers.
"""

from __future__ import annotations

from repro.bench.datasets import load_dataset
from repro.bench.experiments import ablation_equivalence
from repro.core.ct_index import CTIndex


def test_ablation_equivalence(benchmark, save_table):
    rows, text = ablation_equivalence()
    print("\n" + text)
    save_table("ablation_equivalence", text)

    by_variant = {str(r["variant"]): r for r in rows}
    with_reduction = by_variant["with twin reduction"]
    without = by_variant["without"]
    assert int(str(with_reduction["indexed_nodes"])) < int(str(without["indexed_nodes"]))
    assert int(str(with_reduction["entries"])) <= int(str(without["entries"]))

    graph = load_dataset("talk")
    benchmark.pedantic(
        lambda: CTIndex.build(graph, 20, use_equivalence_reduction=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
