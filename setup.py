"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot take the
PEP 660 editable path; ``pip install -e . --no-use-pep517`` uses this
shim instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
