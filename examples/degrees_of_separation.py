"""Degrees-of-separation analysis powered by the CT-Index.

Run with::

    python examples/degrees_of_separation.py

A classic social-network question — "how many hops separate two random
members?" — needs huge numbers of distance evaluations, which is exactly
what a distance index is for.  This example indexes the ``lj``
(LiveJournal analogue) registry graph once, samples 30 000 pairs through
the batched one-to-many API, and prints the separation histogram, mean,
and an index-vs-BFS throughput comparison.
"""

from __future__ import annotations

import random
import time
from collections import Counter

from repro.bench.datasets import dataset_spec, load_dataset
from repro.core.ct_index import CTIndex
from repro.graphs.graph import INF
from repro.graphs.traversal import pairwise_distance


def main() -> None:
    spec = dataset_spec("lj")
    graph = load_dataset("lj")
    print(f"dataset lj — synthetic analogue of {spec.paper_name}")
    print(f"  n = {graph.n}, m = {graph.m}")

    index = CTIndex.build(graph, bandwidth=50)
    print(
        f"CT-50 built in {index.build_seconds:.2f}s "
        f"({index.size_bytes() / 1e6:.3f} MB modeled)\n"
    )

    rng = random.Random(2026)
    sources = [rng.randrange(graph.n) for _ in range(300)]
    histogram: Counter[object] = Counter()
    started = time.perf_counter()
    total_queries = 0
    for s in sources:
        targets = [rng.randrange(graph.n) for _ in range(100)]
        for d in index.distances_from(s, targets):
            histogram["inf" if d == INF else d] += 1
        total_queries += len(targets)
    index_seconds = time.perf_counter() - started

    print("degrees of separation over 30,000 random pairs:")
    finite = [(d, c) for d, c in histogram.items() if d != "inf"]
    total_finite = sum(c for _, c in finite)
    for d, count in sorted(finite):
        bar = "#" * max(1, round(50 * count / total_finite))
        print(f"  {d}: {bar} {count}")
    mean = sum(d * c for d, c in finite) / total_finite
    print(f"mean separation: {mean:.2f} hops")

    # Compare against online bidirectional BFS on a small sample.
    sample = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(300)]
    started = time.perf_counter()
    for s, t in sample:
        pairwise_distance(graph, s, t)
    bfs_seconds = (time.perf_counter() - started) / len(sample)
    per_query = index_seconds / total_queries
    print(
        f"\nthroughput: {per_query * 1e6:.1f} us/query via the index vs "
        f"{bfs_seconds * 1e6:.1f} us/query via bidirectional BFS "
        f"({bfs_seconds / per_query:.1f}x speedup on this small analogue; "
        "online search scales with graph size, the index does not)"
    )


if __name__ == "__main__":
    main()
