"""Road-network scenario: where H2H shines and how CT-Index compares.

Run with::

    python examples/road_network.py

Section 3.3 of the paper explains that H2H exploits the *small
treewidth* of road networks; CT-Index targets the opposite regime.
This example builds a grid "road network" (low treewidth, big diameter)
and a core-periphery "social network" of similar size, and indexes both
with H2H and CT — showing each index's home turf.
"""

from __future__ import annotations

import random
import time

from repro.bench.reporting import format_table
from repro.core.ct_index import CTIndex
from repro.graphs.generators import CorePeripheryConfig, core_periphery_graph, grid_graph
from repro.graphs.traversal import pairwise_distance
from repro.labeling.h2h import build_h2h
from repro.treedec.decomposition import mde_treewidth


def measure(name, kind, index, graph, pairs):
    started = time.perf_counter()
    for s, t in pairs:
        index.distance(s, t)
    per_query = (time.perf_counter() - started) / len(pairs)
    return {
        "graph": kind,
        "method": name,
        "entries": index.size_entries(),
        "entries_per_node": round(index.size_entries() / graph.n, 1),
        "index_s": round(index.build_seconds, 2),
        "query_us": round(per_query * 1e6, 1),
    }


def main() -> None:
    rng = random.Random(5)
    # A long, narrow grid: treewidth 12 regardless of length.
    road = grid_graph(12, 70)
    social = core_periphery_graph(
        CorePeripheryConfig(core_size=200, core_density=0.5, community_count=10,
                            fringe_size=550),
        seed=11,
    )
    print(f"road network (grid): n = {road.n}, m = {road.m}, "
          f"MDE treewidth = {mde_treewidth(road)}")
    print(f"social network:      n = {social.n}, m = {social.m} "
          "(treewidth is in the hundreds — the dense core)\n")

    rows = []
    for kind, graph in (("road", road), ("social", social)):
        pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(500)]
        h2h = build_h2h(graph)
        ct = CTIndex.build(graph, 10)
        # Sanity: both are exact.
        for s, t in pairs[:25]:
            expected = pairwise_distance(graph, s, t)
            assert h2h.distance(s, t) == expected
            assert ct.distance(s, t) == expected
        h2h_row = measure("H2H", kind, h2h, graph, pairs)
        h2h_row["height"] = h2h.height()
        rows.append(h2h_row)
        rows.append(measure("CT-10", kind, ct, graph, pairs))

    print(format_table(rows))
    print(
        "H2H's index is O(n x height) and its 2-hop query is the fastest —\n"
        "the right trade on road networks, whose decompositions stay shallow\n"
        "relative to graph size.  On the core-periphery graph the dense core\n"
        "drags every node's ancestor array up to core size; CT-Index confines\n"
        "that cost to the core's 2-hop labels (5-6x fewer entries here) at a\n"
        "modest query-time premium — the paper's Section 3.3 / Table 1 story."
    )


if __name__ == "__main__":
    main()
