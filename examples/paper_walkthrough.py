"""The paper's running example, reproduced end to end.

Run with::

    python examples/paper_walkthrough.py

Rebuilds the 12-node graph of Figure 1(a) and walks through every
numbered example of the paper — the MDE trace (Example 3), the tree
decomposition (Figure 2 / Example 4), the core-tree split at d = 2
(Example 5), local distances (Example 6), the CT-Index of Figure 5
(Example 7), and the four query cases (Examples 8-12) — printing each
artifact next to the paper's stated values.
"""

from __future__ import annotations

from repro.core.ct_index import CTIndex
from repro.graphs.builder import GraphBuilder
from repro.treedec.core_tree import core_tree_decomposition
from repro.treedec.elimination import minimum_degree_elimination

EDGES_1BASED = [
    (1, 2), (2, 3), (3, 4), (3, 12), (4, 11), (5, 8), (5, 12), (6, 7),
    (6, 8), (7, 10), (9, 10), (9, 11), (9, 12), (10, 11), (10, 12), (11, 12),
]


def build_figure_1a():
    builder = GraphBuilder(12)
    for u, v in EDGES_1BASED:
        builder.add_edge(u - 1, v - 1)
    return builder.build()


def names(values):
    return "{" + ", ".join(f"v{v + 1}" for v in sorted(values)) + "}"


def main() -> None:
    graph = build_figure_1a()
    print("Figure 1(a): 12 nodes, 16 edges")
    print(f"  deg(v10) = {graph.degree(9)}, N(v10) = {names(graph.neighbor_ids(9))} "
          "(Example 1)\n")

    # Example 3 / Figure 2: the full MDE trace and its bags.
    full = minimum_degree_elimination(graph, bandwidth=None)
    print("MDE trace (Example 3) and bags (Figure 2):")
    for step in full.steps:
        print(f"  eliminate v{step.node + 1}: bag B{step.node + 1} = "
              f"{names((step.node,) + step.neighbors)}")
    print(f"  treewidth of this decomposition: {full.width} (Figure 2: tw(T) + 1 bags "
          "of size 4)\n")

    # Example 5: core-tree decomposition at bandwidth d = 2.
    ctd = core_tree_decomposition(graph, 2)
    print("core-tree split at d = 2 (Example 5):")
    print(f"  boundary λ = {ctd.boundary} (paper: 8)")
    print(f"  core B_c = {names(ctd.core_nodes)} (paper: {{v9, v10, v11, v12}})")
    roots = sorted(ctd.node_at(r) + 1 for r in ctd.roots)
    print(f"  roots R = {roots} (paper: {{4, 8}})")
    for r in ctd.roots:
        print(f"  interface of T{ctd.node_at(r) + 1} = "
              f"{names(ctd.interface[r])}")
    print()

    # Figure 5 / Examples 6-7: the CT-Index (elimination hub order makes
    # the core labels match the paper's figure bit for bit).
    index = CTIndex.build(graph, 2, use_equivalence_reduction=False,
                          order="elimination")
    print("tree-index (Figure 5, left):")
    for node_1b in range(1, 9):
        pos = index.decomposition.position[node_1b - 1]
        label = {f"v{k + 1}": v for k, v in sorted(index.tree_index.labels[pos].items())}
        print(f"  v{node_1b}: {label}")
    print("core-index (Figure 5, right):")
    for node_1b in (9, 10, 11, 12):
        compact = index._core_compact[node_1b - 1]
        entries = index.core_index.labels.label_entries(compact)
        rendered = {f"v{index.core_originals[hub] + 1}": d for hub, d in entries}
        print(f"  v{node_1b}: {rendered}")
    print()

    # Examples 8-12: the four query cases.
    checks = [
        ("Example 8  (case 1, core-core):   dist(v11, v12)", 10, 11, 1),
        ("Example 9  (case 2, tree-core):   dist(v6, v11)", 5, 10, 3),
        ("Example 11 (case 3, cross-tree):  dist(v6, v1)", 5, 0, 6),
        ("Example 12 (case 4, same tree):   dist(v5, v6)", 4, 5, 2),
    ]
    print("query cases (Examples 8-12):")
    for label, s, t, expected in checks:
        got = index.distance(s, t)
        status = "ok" if got == expected else f"MISMATCH (expected {expected})"
        print(f"  {label} = {got}  [{status}]")
    print(f"  case counter: {dict(index.case_counts)}")

    # Example 6: the 8-local distance from v7 to v12 is 4.
    pos7 = index.decomposition.position[6]
    print(f"\nExample 6: δ^T(v7, v12) = {index.tree_index.labels[pos7][11]} (paper: 4)")


if __name__ == "__main__":
    main()
