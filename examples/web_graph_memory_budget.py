"""Web-graph scenario: indexing under a memory budget (the paper's Exp 7).

Run with::

    python examples/web_graph_memory_budget.py

The paper's headline result is indexing graphs that 2-hop labeling
cannot fit in memory.  This example takes the ``uk02`` registry graph (a
web-graph analogue), shows PSL+ running out of memory under a budget,
and then uses the bandwidth binary search to find the smallest ``d``
whose CT-Index fits — exactly the deployment workflow Section 5
describes.
"""

from __future__ import annotations

from repro.bench.datasets import dataset_spec, load_dataset
from repro.core.bandwidth import find_bandwidth
from repro.exceptions import OverMemoryError
from repro.labeling.base import MemoryBudget
from repro.labeling.psl_variants import build_psl_plus


def main() -> None:
    spec = dataset_spec("uk02")
    graph = load_dataset("uk02")
    print(f"dataset uk02 — synthetic analogue of {spec.paper_name}")
    print(f"  n = {graph.n}, m = {graph.m}\n")

    budget_mb = 1.0
    print(f"memory budget: {budget_mb} MB (modeled, 8 bytes per label entry)")

    try:
        build_psl_plus(graph, budget=MemoryBudget.from_megabytes(budget_mb))
        print("PSL+ unexpectedly fit!")
    except OverMemoryError as exc:
        print(
            f"PSL+ aborts with OM after {exc.modeled_bytes / 1e6:.2f} MB of labels "
            "— the paper's Figure 7 outcome for large web graphs"
        )

    result = find_bandwidth(graph, int(budget_mb * 1e6))
    print(f"\nbandwidth search (Exp 7): smallest feasible d = {result.bandwidth}")
    for probe in result.probes:
        verdict = "fits" if probe.feasible else "OM  "
        print(
            f"  probe d={probe.bandwidth:<4d} {verdict} "
            f"modeled {probe.modeled_bytes / 1e6:6.3f} MB in {probe.seconds:.2f}s"
        )
    index = result.index
    print(
        f"\nfinal index: {index.method_name}, {index.size_bytes() / 1e6:.3f} MB, "
        f"core {index.core_size} nodes / forest {index.boundary} nodes"
    )
    sample = [(0, graph.n - 1), (5, graph.n // 2), (17, graph.n // 3)]
    for s, t in sample:
        print(f"  dist({s}, {t}) = {index.distance(s, t)}")


if __name__ == "__main__":
    main()
