"""Quickstart: build a CT-Index and answer distance queries.

Run with::

    python examples/quickstart.py

Builds a synthetic core-periphery graph (the structure the paper
targets), indexes it at bandwidth d = 20, answers a few queries, and
shows save/load round-tripping.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import CTIndex
from repro.core.serialization import load_ct_index, save_ct_index
from repro.graphs.generators import CorePeripheryConfig, core_periphery_graph
from repro.graphs.traversal import pairwise_distance


def main() -> None:
    config = CorePeripheryConfig(
        core_size=150,
        core_density=0.4,
        community_count=15,
        fringe_size=800,
    )
    graph = core_periphery_graph(config, seed=42)
    print(f"graph: {graph.n} nodes, {graph.m} edges")

    index = CTIndex.build(graph, bandwidth=20)
    stats = index.stats()
    print(
        f"built {index.method_name}: {stats.entries} label entries "
        f"({stats.megabytes:.3f} MB modeled) in {stats.build_seconds:.2f}s"
    )
    print(
        f"  core |B_c| = {index.core_size} nodes, forest λ = {index.boundary} "
        f"nodes, forest height h_F = {index.forest_height()}"
    )

    rng = random.Random(7)
    print("\nqueries (index result == online bidirectional search):")
    for _ in range(5):
        s, t = rng.randrange(graph.n), rng.randrange(graph.n)
        from_index = index.distance(s, t)
        from_search = pairwise_distance(graph, s, t)
        assert from_index == from_search
        print(f"  dist({s:5d}, {t:5d}) = {from_index}")
    print(f"query-case mix so far: {dict(index.case_counts)}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ct-index.json"
        save_ct_index(index, path)
        reloaded = load_ct_index(path)
        s, t = 0, graph.n - 1
        assert reloaded.distance(s, t) == index.distance(s, t)
        print(f"\nsaved + reloaded index from {path.name}; answers agree")


if __name__ == "__main__":
    main()
