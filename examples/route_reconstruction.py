"""Route reconstruction and directed distances on top of the indexes.

Run with::

    python examples/route_reconstruction.py

Two extensions beyond the paper's distance-only queries:

1. **shortest paths**, recovered from any exact index by greedy next-hop
   expansion (``repro.paths``) — here over a CT-Index on a weighted
   road-like grid, and
2. **directed graphs** (the paper's Section 2 remark), via the
   two-sided directed 2-hop labeling in
   ``repro.labeling.directed_pll``.
"""

from __future__ import annotations

import random

from repro.core.ct_index import CTIndex
from repro.directed.ct import build_directed_ct_index
from repro.graphs.digraph import DiGraph, forward_distances
from repro.graphs.generators import grid_graph
from repro.graphs.generators.random_graphs import random_weighted
from repro.labeling.directed_pll import build_directed_pll
from repro.paths import is_shortest_path, path_length, shortest_path


def main() -> None:
    # 1. Weighted grid (a toy road network with travel times).
    grid = random_weighted(grid_graph(12, 12), 1, 9, seed=3)
    index = CTIndex.build(grid, bandwidth=8)
    print(f"weighted grid: n = {grid.n}, m = {grid.m}; CT-8 built "
          f"({index.size_entries()} entries)")

    rng = random.Random(1)
    for _ in range(3):
        s, t = rng.randrange(grid.n), rng.randrange(grid.n)
        route = shortest_path(index, grid, s, t)
        assert route is not None and is_shortest_path(index, grid, route)
        print(f"  route {s} -> {t}: {' -> '.join(map(str, route))} "
              f"(travel time {path_length(grid, route)})")

    # 2. A directed "follows" network: distances are asymmetric.
    rng = random.Random(2)
    arcs = []
    n = 300
    for v in range(1, n):
        # Everyone follows a few earlier accounts; a fraction follow back.
        for _ in range(rng.randint(1, 3)):
            u = rng.randrange(v)
            arcs.append((v, u))
            if rng.random() < 0.3:
                arcs.append((u, v))
    follows = DiGraph.from_arcs(n, arcs)
    directed = build_directed_pll(follows)
    directed_ct = build_directed_ct_index(follows, bandwidth=3)
    print(f"\ndirected follows network: n = {follows.n}, m = {follows.m}")
    print(f"  directed PLL:      {directed.size_entries()} entries (out + in label sets)")
    print(f"  directed CT-3:     {directed_ct.size_entries()} entries "
          f"(core {directed_ct.core_size} nodes, forest {directed_ct.boundary})")
    asymmetric = 0
    for _ in range(2000):
        s, t = rng.randrange(n), rng.randrange(n)
        forward = directed.distance(s, t)
        backward = directed.distance(t, s)
        assert forward == forward_distances(follows, s)[t]
        assert directed_ct.distance(s, t) == forward
        if forward != backward:
            asymmetric += 1
    print(f"  sampled 2000 pairs: {asymmetric} had dist(s,t) != dist(t,s) "
          "(directed reachability is genuinely one-way)")


if __name__ == "__main__":
    main()
