"""Social-network scenario: the size/time trade-off that motivates CT-Index.

Run with::

    python examples/social_network.py

Takes the ``fb`` registry graph (the Facebook analogue), builds the full
method lineup (PSL+, PSL*, CT at several bandwidths), and prints the
trade-off table of the paper's Figures 7-10: CT trades a little query
time for a much smaller index.
"""

from __future__ import annotations

import time

from repro.bench.datasets import dataset_spec, load_dataset
from repro.bench.reporting import format_table
from repro.bench.workloads import random_pairs
from repro.core.ct_index import CTIndex
from repro.labeling.psl_variants import build_psl_plus, build_psl_star


def main() -> None:
    spec = dataset_spec("fb")
    graph = load_dataset("fb")
    print(f"dataset fb — synthetic analogue of {spec.paper_name}")
    print(f"  n = {graph.n}, m = {graph.m}\n")

    workload = random_pairs(graph, 2000, seed=99)
    rows = []

    def measure(name, index):
        started = time.perf_counter()
        for s, t in workload.pairs:
            index.distance(s, t)
        per_query = (time.perf_counter() - started) / len(workload)
        rows.append(
            {
                "method": name,
                "size_mb": round(index.size_bytes() / 1e6, 3),
                "index_s": round(index.build_seconds, 2),
                "query_us": round(per_query * 1e6, 1),
            }
        )

    measure("PSL+", build_psl_plus(graph))
    measure("PSL*", build_psl_star(graph))
    for d in (5, 20, 50, 100):
        measure(f"CT-{d}", CTIndex.build(graph, d))

    print(format_table(rows, ["method", "size_mb", "index_s", "query_us"]))
    psl_size = rows[0]["size_mb"]
    ct100_size = rows[-1]["size_mb"]
    print(
        f"CT-100 is {float(psl_size) / float(ct100_size):.1f}x smaller than PSL+ "
        "while every method stays far below 1 ms per query."
    )


if __name__ == "__main__":
    main()
