# Convenience targets for the CT-Index reproduction.

.PHONY: install test bench results clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# The final artifact pair recorded in the repository root.
results:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks build dist src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
